#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/gantt.h"
#include "src/common/units.h"

namespace varuna {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  auto r = Result<int>::Error("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), "boom");
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.NextUint64() == b.NextUint64();
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.Gaussian(2.0, 3.0));
  }
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(rng.Exponential(5.0));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.2);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(17);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) {
    samples.push_back(rng.LogNormalMedian(10.0, 0.5));
  }
  EXPECT_NEAR(Percentile(samples, 0.5), 10.0, 0.5);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    hits += rng.Bernoulli(0.3);
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ForkIndependent) {
  Rng a(21);
  Rng fork = a.Fork();
  EXPECT_NE(a.NextUint64(), fork.NextUint64());
}

TEST(StatsTest, RunningStatsBasic) {
  RunningStats stats;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) {
    stats.Add(x);
  }
  EXPECT_EQ(stats.count(), 4);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_NEAR(stats.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
}

TEST(StatsTest, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0, 3.0, 4.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0, 3.0, 4.0}, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);  // Unsorted input.
}

TEST(StatsTest, MeanOfSamples) { EXPECT_DOUBLE_EQ(Mean({2.0, 4.0, 9.0}), 5.0); }

TEST(UnitsTest, Conversions) {
  EXPECT_DOUBLE_EQ(GbpsToBytesPerSec(8.0), 1e9);
  EXPECT_DOUBLE_EQ(kGiB, 1073741824.0);
  EXPECT_DOUBLE_EQ(kHour, 3600.0);
}

TEST(TableTest, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22.5"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22.5  |"), std::string::npos);
}

TEST(GanttTest, RendersBarsAndAxis) {
  GanttChart chart;
  chart.AddRow({"S1", {{0.0, 2.0, "F1"}, {2.0, 4.0, "B1"}}});
  chart.AddRow({"S2", {{1.0, 3.0, "F1"}}});
  const std::string out = chart.Render(40);
  EXPECT_NE(out.find("S1"), std::string::npos);
  EXPECT_NE(out.find("F1"), std::string::npos);
  EXPECT_NE(out.find("B1"), std::string::npos);
  // Gap before S2's bar rendered as dots.
  EXPECT_NE(out.find("|."), std::string::npos);
}

TEST(GanttTest, EmptyChartRendersNothing) {
  GanttChart chart;
  EXPECT_EQ(chart.Render(40), "");
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(3.0, 0), "3");
}

}  // namespace
}  // namespace varuna
