// The incremental-morph-decision contract: candidate-level memoization plus
// bound pruning must be pure speed — never behaviour.
//   * Over seeded spot traces, the incremental sweep's chosen JobConfig at
//     every G is bit-identical (operator==, doubles included) to a
//     from-scratch cold sweep at that G, serial and pooled.
//   * Pruned sweeps are bit-identical across serial and pooled execution
//     (pruning rounds are a fixed size, never the worker count).
//   * The analytic lower bound never exceeds the simulated time (the
//     pruning-soundness invariant).
//   * Stale-hit safety: recalibration and any constraint change (budget,
//     micro-batch tolerance/candidates, M_total) clear the candidate memo
//     and force re-simulation — a stale hit would be a silent wrong morph.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/vm.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/model/op_graph.h"
#include "src/morph/calibration.h"
#include "src/morph/config_search.h"
#include "src/morph/liveput.h"

namespace varuna {
namespace {

struct Fixture {
  TransformerSpec spec;
  OpGraph graph;
  ModelSections sections;
  Cluster cluster;
  Calibration calibration;

  explicit Fixture(uint64_t calibration_seed = 99)
      : spec(Gpt2_2_5B()),
        graph(BuildTransformerOpGraph(spec)),
        sections(IdentifyCutPoints(graph, spec.num_layers).value()),
        cluster(CommodityFabric()) {
    cluster.AddVms(Nc6V3(), 16);
    Rng rng(calibration_seed);
    calibration = Calibrate(sections, cluster, CalibrationOptions(), &rng).value();
  }
};

SearchConstraints DefaultConstraints() {
  SearchConstraints constraints;
  constraints.total_batch = 2400;
  constraints.budget.gpu_memory_bytes = Nc6V3().gpu.memory_bytes;
  return constraints;
}

// Number of memory-feasible candidates a fresh unpruned sweep at G simulates
// (== its candidate-memo misses on a cold instance).
uint64_t ColdCandidateCount(const Fixture& fx, int gpus, const SearchConstraints& constraints) {
  ConfigSearch search(&fx.spec, &fx.sections, &fx.calibration);
  EXPECT_TRUE(search.Sweep(gpus, constraints).ok());
  return search.stats().candidates_simulated;
}

// --- Spot-trace property: incremental == from-scratch, at every G. ----------

TEST(ConfigSearchIncrementalTest, SpotTraceWinnersBitIdenticalToColdSweeps) {
  Fixture fx;
  const SearchConstraints constraints = DefaultConstraints();  // prune on.
  SearchConstraints unpruned = constraints;
  unpruned.prune = false;

  // Cold oracle: Best at each distinct G from a fresh, unpruned instance.
  // Computed once per G and shared across traces (a trace revisiting G must
  // match the same oracle anyway).
  std::map<int, JobConfig> oracle;
  const auto oracle_best = [&](int gpus) -> const JobConfig& {
    const auto it = oracle.find(gpus);
    if (it != oracle.end()) {
      return it->second;
    }
    ConfigSearch cold(&fx.spec, &fx.sections, &fx.calibration);
    return oracle.emplace(gpus, cold.Best(gpus, unpruned).value()).first->second;
  };

  ThreadPool pool(4);
  Rng rng(0x5707ULL);
  constexpr int kTraces = 50;
  constexpr int kPointsPerTrace = 5;
  for (int trace = 0; trace < kTraces; ++trace) {
    // One incremental searcher per trace: its candidate memo accumulates
    // across the trace's morph events, exactly like a live session's.
    ConfigSearch serial(&fx.spec, &fx.sections, &fx.calibration);
    ConfigSearch pooled(&fx.spec, &fx.sections, &fx.calibration, &pool);
    for (int point = 0; point < kPointsPerTrace; ++point) {
      const int gpus = static_cast<int>(rng.UniformInt(12, 40));
      const JobConfig& expected = oracle_best(gpus);
      const auto serial_best = serial.Best(gpus, constraints);
      const auto pooled_best = pooled.Best(gpus, constraints);
      ASSERT_TRUE(serial_best.ok()) << "trace=" << trace << " G=" << gpus;
      ASSERT_TRUE(pooled_best.ok()) << "trace=" << trace << " G=" << gpus;
      EXPECT_TRUE(serial_best.value() == expected)
          << "trace=" << trace << " G=" << gpus << " serial winner diverged from cold sweep";
      EXPECT_TRUE(pooled_best.value() == expected)
          << "trace=" << trace << " G=" << gpus << " pooled winner diverged from cold sweep";
    }
    // The traces genuinely exercise the incremental path, not 50 cold runs.
    if (trace == 0) {
      EXPECT_GT(serial.stats().candidate_memo_hits, 0u);
    }
  }
}

TEST(ConfigSearchIncrementalTest, PrunedSweepBitIdenticalSerialVsPooled) {
  const SearchConstraints constraints = DefaultConstraints();  // prune on.
  Fixture fx(7);
  for (const int gpus : {16, 36, 100}) {
    ConfigSearch serial(&fx.spec, &fx.sections, &fx.calibration);
    const auto serial_sweep = serial.Sweep(gpus, constraints);
    ASSERT_TRUE(serial_sweep.ok());
    for (const int threads : {1, 2, 4}) {
      ThreadPool pool(threads);
      ConfigSearch pooled(&fx.spec, &fx.sections, &fx.calibration, &pool);
      const auto pooled_sweep = pooled.Sweep(gpus, constraints);
      ASSERT_TRUE(pooled_sweep.ok());
      EXPECT_EQ(pooled_sweep.value(), serial_sweep.value())
          << "G=" << gpus << " threads=" << threads;
    }
  }
}

TEST(ConfigSearchIncrementalTest, PrunedWinnerEqualsUnprunedWinner) {
  Fixture fx;
  SearchConstraints pruned = DefaultConstraints();
  SearchConstraints unpruned = DefaultConstraints();
  unpruned.prune = false;
  ConfigSearch pruned_search(&fx.spec, &fx.sections, &fx.calibration);
  ConfigSearch unpruned_search(&fx.spec, &fx.sections, &fx.calibration);
  for (const int gpus : {12, 16, 36, 64, 100}) {
    const auto a = pruned_search.Best(gpus, pruned);
    const auto b = unpruned_search.Best(gpus, unpruned);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(a.value() == b.value()) << "G=" << gpus;
  }
  // And pruning actually pruned something somewhere, or the test is vacuous.
  EXPECT_GT(pruned_search.stats().candidates_pruned, 0u);
  // The pruned list is a subset containing the winner; the unpruned list is
  // exhaustive.
  EXPECT_LT(pruned_search.stats().candidates_simulated,
            unpruned_search.stats().candidates_simulated);
}

TEST(ConfigSearchIncrementalTest, LowerBoundNeverExceedsSimulatedTime) {
  Fixture fx;
  SearchConstraints constraints = DefaultConstraints();
  constraints.prune = false;  // Exhaustive list.
  ConfigSearch search(&fx.spec, &fx.sections, &fx.calibration);
  FastSimulator simulator(&fx.calibration);
  for (const int gpus : {16, 36, 100}) {
    const auto sweep = search.Sweep(gpus, constraints);
    ASSERT_TRUE(sweep.ok());
    for (const JobConfig& config : sweep.value()) {
      const Partition partition =
          PartitionModel(fx.sections, config.pipeline_depth).value();
      FastSimConfig sim_config;
      sim_config.sections = &fx.sections;
      sim_config.partition = &partition;
      sim_config.data_parallel = config.data_parallel;
      sim_config.microbatch_size = config.microbatch_size;
      sim_config.gpus_per_node = constraints.gpus_per_node;
      sim_config.shared_sync_bytes = constraints.shared_sync_bytes;
      const double bound =
          simulator.LowerBoundMinibatch(sim_config, config.num_microbatches);
      EXPECT_LE(bound, config.est_minibatch_s)
          << "G=" << gpus << " P=" << config.pipeline_depth << " m=" << config.microbatch_size;
      EXPECT_GT(bound, 0.0);
    }
  }
}

// --- Stale-hit safety: every memo-relevant input change re-simulates. -------

// Runs `mutate` between two identical unpruned sweeps and asserts the second
// sweep served nothing from the candidate memo.
template <typename Mutate>
void ExpectFullResimulation(Mutate&& mutate) {
  Fixture fx;
  SearchConstraints constraints = DefaultConstraints();
  constraints.prune = false;  // Exact counter arithmetic, no pruning noise.
  ConfigSearch search(&fx.spec, &fx.sections, &fx.calibration);
  ASSERT_TRUE(search.Sweep(36, constraints).ok());
  const ConfigSearchStats before = search.stats();
  ASSERT_GT(before.candidates_simulated, 0u);

  mutate(&fx, &constraints);

  ASSERT_TRUE(search.Sweep(36, constraints).ok());
  const ConfigSearchStats after = search.stats();
  // No stale hits: every probed candidate missed and was re-simulated.
  EXPECT_EQ(after.candidate_memo_hits, before.candidate_memo_hits);
  EXPECT_GT(after.candidates_simulated, before.candidates_simulated);
  EXPECT_EQ(after.candidates_simulated - before.candidates_simulated,
            after.candidate_memo_misses - before.candidate_memo_misses);
}

TEST(ConfigSearchIncrementalTest, RecalibrationForcesResimulation) {
  ExpectFullResimulation([](Fixture* fx, SearchConstraints*) {
    const uint64_t fingerprint = fx->calibration.Fingerprint();
    fx->calibration.sections[0].forward_s.begin()->second *= 1.5;
    ASSERT_NE(fx->calibration.Fingerprint(), fingerprint);
  });
}

TEST(ConfigSearchIncrementalTest, BudgetChangeForcesResimulation) {
  ExpectFullResimulation([](Fixture*, SearchConstraints* constraints) {
    constraints->budget.gpu_memory_bytes *= 2.0;
  });
}

TEST(ConfigSearchIncrementalTest, ToleranceChangeForcesResimulation) {
  ExpectFullResimulation([](Fixture*, SearchConstraints* constraints) {
    constraints->microbatch_tolerance = 0.25;
  });
}

TEST(ConfigSearchIncrementalTest, MicrobatchCandidatesChangeForcesResimulation) {
  ExpectFullResimulation([](Fixture*, SearchConstraints* constraints) {
    constraints->microbatch_candidates = 1;
  });
}

TEST(ConfigSearchIncrementalTest, TotalBatchChangeForcesResimulation) {
  ExpectFullResimulation([](Fixture*, SearchConstraints* constraints) {
    constraints->total_batch = 1200;
  });
}

TEST(ConfigSearchIncrementalTest, PredictorLearningStepForcesResimulation) {
  // A liveput predictor learning step (src/morph/liveput.h) rotates its
  // fingerprint; the memo context must rotate with it, so a liveput decision
  // can never be served a candidate memoized under an older predictor state.
  ExpectFullResimulation([](Fixture*, SearchConstraints* constraints) {
    AvailabilityPredictor predictor;
    const uint64_t cold = predictor.Fingerprint();
    predictor.ObserveGrant(10.0);
    predictor.ObservePreemption(200.0);
    ASSERT_NE(predictor.Fingerprint(), cold);
    constraints->predictor_fingerprint = predictor.Fingerprint();
  });
}

// Positive control: an *unchanged* predictor fingerprint is part of a stable
// memo context — the repeat sweep is served from the sweep cache (zero new
// simulations) and its candidates are bit-identical (operator==, doubles
// included).
TEST(ConfigSearchIncrementalTest, UnchangedPredictorFingerprintReusesBitIdentically) {
  Fixture fx;
  SearchConstraints constraints = DefaultConstraints();
  constraints.prune = false;
  AvailabilityPredictor predictor;
  predictor.ObservePreemption(60.0);
  constraints.predictor_fingerprint = predictor.Fingerprint();
  ConfigSearch search(&fx.spec, &fx.sections, &fx.calibration);
  const auto first = search.Sweep(36, constraints);
  ASSERT_TRUE(first.ok());
  const ConfigSearchStats before = search.stats();
  ASSERT_GT(before.candidates_simulated, 0u);
  const auto second = search.Sweep(36, constraints);
  ASSERT_TRUE(second.ok());
  const ConfigSearchStats after = search.stats();
  EXPECT_EQ(after.candidates_simulated, before.candidates_simulated);
  EXPECT_GT(after.sweep_cache_hits, before.sweep_cache_hits);
  ASSERT_EQ(first.value().size(), second.value().size());
  for (size_t i = 0; i < first.value().size(); ++i) {
    EXPECT_TRUE(first.value()[i] == second.value()[i]) << "candidate " << i;
  }
}

// Positive control: with nothing mutated, a new G reuses candidates instead
// of re-simulating them all — the counters can tell reuse from invalidation.
TEST(ConfigSearchIncrementalTest, UnchangedContextReusesCandidatesAtNewG) {
  Fixture fx;
  SearchConstraints constraints = DefaultConstraints();
  constraints.prune = false;
  ConfigSearch search(&fx.spec, &fx.sections, &fx.calibration);
  ASSERT_TRUE(search.Sweep(36, constraints).ok());
  const ConfigSearchStats before = search.stats();
  ASSERT_TRUE(search.Sweep(35, constraints).ok());
  const ConfigSearchStats after = search.stats();
  EXPECT_GT(after.candidate_memo_hits, before.candidate_memo_hits);
  EXPECT_LT(after.candidates_simulated - before.candidates_simulated,
            ColdCandidateCount(fx, 35, constraints));
}

}  // namespace
}  // namespace varuna
