// The parallel-sweep determinism contract: a ConfigSearch with a ThreadPool
// attached must return results bit-identical to a serial sweep — same
// JobConfig vectors, doubles included — across calibration seeds, GPU counts
// and pool sizes. Also pins the memoization semantics: repeated sweeps hit the
// memo, recalibration invalidates it, and schedule shapes are generated once.
#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/vm.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/model/op_graph.h"
#include "src/morph/calibration.h"
#include "src/morph/config_search.h"
#include "src/pipeline/schedule_cache.h"
#include "src/varuna/determinism.h"

namespace varuna {
namespace {

struct Fixture {
  TransformerSpec spec;
  OpGraph graph;
  ModelSections sections;
  Cluster cluster;
  Calibration calibration;

  explicit Fixture(uint64_t calibration_seed = 99)
      : spec(Gpt2_2_5B()),
        graph(BuildTransformerOpGraph(spec)),
        sections(IdentifyCutPoints(graph, spec.num_layers).value()),
        cluster(CommodityFabric()) {
    cluster.AddVms(Nc6V3(), 16);
    Rng rng(calibration_seed);
    calibration = Calibrate(sections, cluster, CalibrationOptions(), &rng).value();
  }
};

SearchConstraints DefaultConstraints() {
  SearchConstraints constraints;
  constraints.total_batch = 2400;
  constraints.budget.gpu_memory_bytes = Nc6V3().gpu.memory_bytes;
  return constraints;
}

TEST(ConfigSearchParallelTest, PooledSweepBitIdenticalToSerial) {
  const SearchConstraints constraints = DefaultConstraints();
  for (const uint64_t seed : {1ULL, 7ULL}) {
    Fixture fx(seed);
    for (const int gpus : {16, 36, 100}) {
      // Separate instances per variant: a shared instance would serve the
      // pooled run from the serial run's memo and make the comparison vacuous.
      ConfigSearch serial(&fx.spec, &fx.sections, &fx.calibration);
      const auto serial_sweep = serial.Sweep(gpus, constraints);
      ASSERT_TRUE(serial_sweep.ok()) << "seed=" << seed << " G=" << gpus;
      ASSERT_FALSE(serial_sweep.value().empty());
      for (const int threads : {2, 4}) {
        ThreadPool pool(threads);
        ConfigSearch pooled(&fx.spec, &fx.sections, &fx.calibration, &pool);
        const auto pooled_sweep = pooled.Sweep(gpus, constraints);
        ASSERT_TRUE(pooled_sweep.ok());
        EXPECT_EQ(pooled_sweep.value(), serial_sweep.value())
            << "seed=" << seed << " G=" << gpus << " threads=" << threads;
      }
    }
  }
}

TEST(ConfigSearchParallelTest, PooledBestMatchesSerialBest) {
  Fixture fx;
  const SearchConstraints constraints = DefaultConstraints();
  ConfigSearch serial(&fx.spec, &fx.sections, &fx.calibration);
  ThreadPool pool(4);
  ConfigSearch pooled(&fx.spec, &fx.sections, &fx.calibration, &pool);
  for (const int gpus : {16, 100}) {
    const auto serial_best = serial.Best(gpus, constraints);
    const auto pooled_best = pooled.Best(gpus, constraints);
    ASSERT_TRUE(serial_best.ok());
    ASSERT_TRUE(pooled_best.ok());
    EXPECT_TRUE(serial_best.value() == pooled_best.value()) << "G=" << gpus;
  }
}

TEST(ConfigSearchParallelTest, RepeatedSweepHitsMemo) {
  Fixture fx;
  const SearchConstraints constraints = DefaultConstraints();
  ConfigSearch search(&fx.spec, &fx.sections, &fx.calibration);
  const auto first = search.Sweep(36, constraints);
  ASSERT_TRUE(first.ok());
  const uint64_t simulated_cold = search.stats().candidates_simulated;
  EXPECT_GT(simulated_cold, 0u);

  const auto second = search.Sweep(36, constraints);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), first.value());
  EXPECT_EQ(search.stats().sweeps, 2u);
  EXPECT_EQ(search.stats().sweep_cache_misses, 1u);
  EXPECT_EQ(search.stats().sweep_cache_hits, 1u);
  // The memo hit re-simulated nothing.
  EXPECT_EQ(search.stats().candidates_simulated, simulated_cold);
}

TEST(ConfigSearchParallelTest, DistinctInputsMissTheMemo) {
  Fixture fx;
  SearchConstraints constraints = DefaultConstraints();
  ConfigSearch search(&fx.spec, &fx.sections, &fx.calibration);
  ASSERT_TRUE(search.Sweep(36, constraints).ok());
  ASSERT_TRUE(search.Sweep(40, constraints).ok());  // Different G.
  constraints.microbatch_candidates = 1;
  ASSERT_TRUE(search.Sweep(36, constraints).ok());  // Different constraints.
  EXPECT_EQ(search.stats().sweep_cache_misses, 3u);
  EXPECT_EQ(search.stats().sweep_cache_hits, 0u);
}

TEST(ConfigSearchParallelTest, RecalibrationInvalidatesMemo) {
  Fixture fx;
  const SearchConstraints constraints = DefaultConstraints();
  ConfigSearch search(&fx.spec, &fx.sections, &fx.calibration);
  const auto before = search.Sweep(36, constraints);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(search.stats().sweep_cache_misses, 1u);

  // An in-place recalibration (even one profiled point) changes the
  // fingerprint, so the next sweep must re-simulate, not serve stale configs.
  const uint64_t fingerprint_before = fx.calibration.Fingerprint();
  fx.calibration.sections[0].forward_s.begin()->second *= 1.5;
  EXPECT_NE(fx.calibration.Fingerprint(), fingerprint_before);

  const uint64_t simulated_before = search.stats().candidates_simulated;
  const auto after = search.Sweep(36, constraints);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(search.stats().sweep_cache_misses, 2u);
  EXPECT_EQ(search.stats().sweep_cache_hits, 0u);
  EXPECT_GT(search.stats().candidates_simulated, simulated_before);
}

TEST(ConfigSearchParallelTest, InfeasibleSweepsAreMemoizedToo) {
  Fixture fx;
  SearchConstraints constraints = DefaultConstraints();
  constraints.budget.gpu_memory_bytes = 1.0;  // Nothing fits.
  ConfigSearch search(&fx.spec, &fx.sections, &fx.calibration);
  EXPECT_FALSE(search.Best(16, constraints).ok());
  EXPECT_FALSE(search.Best(16, constraints).ok());
  EXPECT_EQ(search.stats().sweep_cache_misses, 1u);
  EXPECT_EQ(search.stats().sweep_cache_hits, 1u);
}

TEST(ScheduleCacheTest, GeneratesEachShapeOnce) {
  ScheduleCache cache;
  const Schedule& a = cache.Get(ScheduleKind::kVaruna, 4, 8);
  const Schedule& b = cache.Get(ScheduleKind::kVaruna, 4, 8);
  EXPECT_EQ(&a, &b);  // Stable reference, no regeneration.
  const Schedule& c = cache.Get(ScheduleKind::kVaruna, 4, 9);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  // Clear() drops entries and resets the counters (cold-start semantics).
  cache.Clear();
  (void)cache.Get(ScheduleKind::kVaruna, 4, 8);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ConfigSearchParallelTest, SweepReusesCandidatesAcrossClusterSizes) {
  Fixture fx;
  const SearchConstraints constraints = DefaultConstraints();
  ConfigSearch search(&fx.spec, &fx.sections, &fx.calibration);
  ASSERT_TRUE(search.Sweep(36, constraints).ok());
  const ConfigSearchStats cold = search.stats();
  EXPECT_GT(cold.candidates_simulated, 0u);
  EXPECT_EQ(cold.candidate_memo_hits, 0u);
  // A second cluster size re-derives many of the same (P, D, m, Nm) tuples
  // (D = G/P is unchanged for most P); those must come from the candidate
  // memo without re-simulation — and a memoized candidate never even needs
  // its schedule, so the schedule cache is not touched for it either.
  const ScheduleCacheStats schedules_cold = search.schedule_cache()->stats();
  ASSERT_TRUE(search.Sweep(35, constraints).ok());
  const ConfigSearchStats warm = search.stats();
  EXPECT_GT(warm.candidate_memo_hits, 0u);
  const uint64_t resimulated = warm.candidates_simulated - cold.candidates_simulated;
  EXPECT_LT(resimulated, cold.candidates_simulated);
  // Only freshly simulated candidates may generate schedules.
  const ScheduleCacheStats schedules_warm = search.schedule_cache()->stats();
  EXPECT_LE(schedules_warm.misses - schedules_cold.misses, resimulated);
}

// End-to-end: an elastic session whose morph decisions run on a 4-worker pool
// produces the *same* training trace, event for event at full precision, as
// the serial session — pooled search must never alter behaviour.
TEST(ConfigSearchParallelTest, ElasticTrainerTraceUnchangedByPooledSearch) {
  DeterminismScenario serial_scenario = DefaultDeterminismScenario(7);
  serial_scenario.options.search_threads = 1;
  DeterminismScenario pooled_scenario = DefaultDeterminismScenario(7);
  pooled_scenario.options.search_threads = 4;

  const ElasticTrace serial_trace = RunElasticScenario(serial_scenario);
  const ElasticTrace pooled_trace = RunElasticScenario(pooled_scenario);
  EXPECT_TRUE(serial_trace == pooled_trace);
  EXPECT_EQ(serial_trace.Fingerprint(), pooled_trace.Fingerprint());
  EXPECT_GT(serial_trace.minibatches_done, 0);
}

}  // namespace
}  // namespace varuna
