#include <gtest/gtest.h>

#include "src/varuna/determinism.h"

namespace varuna {
namespace {

TEST(DeterminismTest, SameSeedBitIdenticalTrace) {
  const DeterminismScenario scenario = DefaultDeterminismScenario(/*seed=*/11);
  const ElasticTrace first = RunElasticScenario(scenario);
  const ElasticTrace second = RunElasticScenario(scenario);

  // The scenario must actually exercise the interesting paths, otherwise the
  // bit-identity claim is vacuous.
  EXPECT_GT(first.events_processed, 100u);
  EXPECT_GT(first.minibatches_done, 0);
  EXPECT_FALSE(first.event_times_s.empty());
  EXPECT_FALSE(first.sample_times_s.empty());

  EXPECT_EQ(first, second);
  EXPECT_EQ(first.Fingerprint(), second.Fingerprint());
}

TEST(DeterminismTest, SameSeedBitIdenticalUnderChurn) {
  // Aggressive preemption hazard: the trace must stay bit-identical through
  // preemption handling, checkpoint restores and morphs.
  DeterminismScenario scenario = DefaultDeterminismScenario(/*seed=*/23);
  scenario.preemption_hazard_per_s = 1.0 / (1.5 * 3600.0);
  scenario.horizon_s = 4.0 * 3600.0;
  const ElasticTrace first = RunElasticScenario(scenario);
  const ElasticTrace second = RunElasticScenario(scenario);
  EXPECT_GT(first.preemptions_hit + first.morphs, 0);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.Fingerprint(), second.Fingerprint());
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Sanity check that the fingerprint has discriminating power: different
  // seeds drive different market draws, so the traces must differ.
  const ElasticTrace a = RunElasticScenario(DefaultDeterminismScenario(/*seed=*/11));
  const ElasticTrace b = RunElasticScenario(DefaultDeterminismScenario(/*seed=*/12));
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

}  // namespace
}  // namespace varuna
