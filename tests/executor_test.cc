#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/placement.h"
#include "src/cluster/vm.h"
#include "src/common/rng.h"
#include "src/model/cutpoints.h"
#include "src/model/op_graph.h"
#include "src/model/transformer.h"
#include "src/pipeline/executor.h"
#include "src/pipeline/schedule.h"
#include "src/pipeline/stage_timing.h"

namespace varuna {
namespace {

struct TestJob {
  Cluster cluster;
  Placement placement;
  std::vector<StageTiming> timings;
  Schedule schedule;
  int microbatch = 4;

  TestJob(const TransformerSpec& spec, ScheduleKind kind, int depth, int replicas,
          int microbatches, int m, const VmType& vm, const FabricSpec& fabric)
      : cluster(fabric), microbatch(m) {
    const int vms_needed = (depth * replicas + vm.node.num_gpus - 1) / vm.node.num_gpus;
    cluster.AddVms(vm, vms_needed);
    auto placed = PlaceJob(cluster, depth, replicas);
    placement = placed.value();
    const OpGraph graph = BuildTransformerOpGraph(spec);
    const auto sections = IdentifyCutPoints(graph, spec.num_layers);
    const auto partition = PartitionModel(sections.value(), depth);
    timings = ComputeStageTimings(sections.value(), partition.value(), vm.gpu, m);
    schedule = GenerateSchedule(kind, depth, microbatches);
  }
};

TEST(StageTimingTest, BackwardRoughlyTwiceForward) {
  const TransformerSpec spec = Gpt2_2_5B();
  const OpGraph graph = BuildTransformerOpGraph(spec);
  const auto sections = IdentifyCutPoints(graph, spec.num_layers);
  const auto partition = PartitionModel(sections.value(), 9);
  const auto timings = ComputeStageTimings(sections.value(), partition.value(), GpuSpec(), 4);
  ASSERT_EQ(timings.size(), 9u);
  for (const auto& timing : timings) {
    EXPECT_GT(timing.forward_s, 0.0);
    EXPECT_NEAR(timing.backward_s / timing.forward_s, 2.0, 0.15);
    EXPECT_DOUBLE_EQ(timing.recompute_s, timing.forward_s);
  }
  // Interior stages send one boundary activation per example.
  EXPECT_NEAR(timings[0].send_activation_bytes, 4 * spec.BoundaryActivationBytes(), 1.0);
  EXPECT_DOUBLE_EQ(timings.back().send_activation_bytes, 0.0);
}

TEST(StageTimingTest, LargerMicrobatchMoreEfficient) {
  const TransformerSpec spec = BertLarge();
  const OpGraph graph = BuildTransformerOpGraph(spec);
  const auto sections = IdentifyCutPoints(graph, spec.num_layers);
  const auto partition = PartitionModel(sections.value(), 4);
  const auto t4 = ComputeStageTimings(sections.value(), partition.value(), GpuSpec(), 4);
  const auto t8 = ComputeStageTimings(sections.value(), partition.value(), GpuSpec(), 8);
  // Per-example forward time shrinks with m.
  EXPECT_LT(t8[1].forward_s / 8.0, t4[1].forward_s / 4.0);
}

TEST(ExecutorTest, DeterministicWithoutNoise) {
  TestJob job(Gpt2_2_5B(), ScheduleKind::kVaruna, 9, 2, 8, 4, Nc6V3(), CommodityFabric());
  ExecutorOptions options;
  options.compute_noise_sigma = 0.0;
  options.sample_network = false;
  Rng rng1(1);
  Rng rng2(2);
  PipelineExecutor executor1(&job.cluster, &rng1);
  PipelineExecutor executor2(&job.cluster, &rng2);
  const auto r1 = executor1.Run(job.schedule, job.placement, job.timings, 4, options);
  const auto r2 = executor2.Run(job.schedule, job.placement, job.timings, 4, options);
  EXPECT_DOUBLE_EQ(r1.total_time_s, r2.total_time_s);
  EXPECT_GT(r1.total_time_s, 0.0);
}

TEST(ExecutorTest, ExampleAccounting) {
  TestJob job(Gpt2_2_5B(), ScheduleKind::kVaruna, 9, 3, 8, 4, Nc6V3(), CommodityFabric());
  Rng rng(1);
  PipelineExecutor executor(&job.cluster, &rng);
  const auto result = executor.Run(job.schedule, job.placement, job.timings, 4);
  EXPECT_DOUBLE_EQ(result.examples, 4.0 * 8 * 3);
  EXPECT_GT(result.ExamplesPerSecond(), 0.0);
}

TEST(ExecutorTest, MoreMicrobatchesImproveEfficiency) {
  // Bubble fraction ~ P/Nm: throughput per example improves with Nm.
  Rng rng(1);
  TestJob small(Gpt2_2_5B(), ScheduleKind::kVaruna, 9, 1, 9, 4, Nc6V3(), CommodityFabric());
  TestJob large(Gpt2_2_5B(), ScheduleKind::kVaruna, 9, 1, 54, 4, Nc6V3(), CommodityFabric());
  ExecutorOptions options;
  options.compute_noise_sigma = 0.0;
  options.sample_network = false;
  PipelineExecutor executor_small(&small.cluster, &rng);
  PipelineExecutor executor_large(&large.cluster, &rng);
  const auto few = executor_small.Run(small.schedule, small.placement, small.timings, 4, options);
  const auto many = executor_large.Run(large.schedule, large.placement, large.timings, 4, options);
  EXPECT_GT(many.ExamplesPerSecond(), 1.2 * few.ExamplesPerSecond());
}

TEST(ExecutorTest, VarunaBeatsGpipeUnderJitter) {
  // Observation 3 / Table 5: the Varuna schedule tolerates jitter better.
  double varuna_total = 0.0;
  double gpipe_total = 0.0;
  Rng rng(42);
  for (int trial = 0; trial < 5; ++trial) {
    TestJob varuna(Gpt2_2_5B(), ScheduleKind::kVaruna, 9, 1, 18, 4, Nc6V3(), CommodityFabric());
    TestJob gpipe(Gpt2_2_5B(), ScheduleKind::kGpipe, 9, 1, 18, 4, Nc6V3(), CommodityFabric());
    PipelineExecutor executor_v(&varuna.cluster, &rng);
    varuna_total += executor_v.Run(varuna.schedule, varuna.placement, varuna.timings, 4)
                        .total_time_s;
    PipelineExecutor executor_g(&gpipe.cluster, &rng);
    gpipe_total += executor_g.Run(gpipe.schedule, gpipe.placement, gpipe.timings, 4)
                       .total_time_s;
  }
  EXPECT_LT(varuna_total, gpipe_total);
}

TEST(ExecutorTest, SlowGpuStretchesMinibatch) {
  // With Nm >> P the steady state is gated by the slowest stage (§4.6:
  // "even a single slow GPU would slow down the entire job").
  TestJob job(Gpt2_2_5B(), ScheduleKind::kVaruna, 9, 1, 54, 4, Nc6V3(), CommodityFabric());
  ExecutorOptions options;
  options.compute_noise_sigma = 0.0;
  options.sample_network = false;
  Rng rng(1);
  PipelineExecutor executor(&job.cluster, &rng);
  const double baseline = executor.Run(job.schedule, job.placement, job.timings, 4, options)
                              .total_time_s;
  job.cluster.SetSlowFactor(job.cluster.VmOfGpu(job.placement.At(0, 4)), 1.3);
  const double degraded = executor.Run(job.schedule, job.placement, job.timings, 4, options)
                              .total_time_s;
  EXPECT_GT(degraded, 1.12 * baseline);
}

TEST(ExecutorTest, AllReduceGrowsWithReplicas) {
  ExecutorOptions options;
  options.compute_noise_sigma = 0.0;
  options.sample_network = false;
  Rng rng(1);
  TestJob d2(Gpt2_2_5B(), ScheduleKind::kVaruna, 9, 2, 8, 4, Nc6V3(), CommodityFabric());
  TestJob d6(Gpt2_2_5B(), ScheduleKind::kVaruna, 9, 6, 8, 4, Nc6V3(), CommodityFabric());
  PipelineExecutor e2(&d2.cluster, &rng);
  PipelineExecutor e6(&d6.cluster, &rng);
  const auto r2 = e2.Run(d2.schedule, d2.placement, d2.timings, 4, options);
  const auto r6 = e6.Run(d6.schedule, d6.placement, d6.timings, 4, options);
  EXPECT_GT(r6.allreduce_time_s, r2.allreduce_time_s);
}

TEST(ExecutorTest, SharedStateSyncAddsTailTime) {
  TestJob job(Gpt2_2_5B(), ScheduleKind::kVaruna, 9, 1, 8, 4, Nc6V3(), CommodityFabric());
  ExecutorOptions options;
  options.compute_noise_sigma = 0.0;
  options.sample_network = false;
  Rng rng(1);
  PipelineExecutor executor(&job.cluster, &rng);
  const double plain = executor.Run(job.schedule, job.placement, job.timings, 4, options)
                           .total_time_s;
  options.shared_state_sync_bytes = 4.0 * Gpt2_2_5B().EmbeddingParams();
  const auto synced = executor.Run(job.schedule, job.placement, job.timings, 4, options);
  EXPECT_GT(synced.total_time_s, plain);
  EXPECT_GT(synced.sync_time_s, 0.0);
}

TEST(ExecutorTest, TraceCoversAllStages) {
  TestJob job(Gpt2_2_5B(), ScheduleKind::kVaruna, 6, 2, 6, 4, Nc6V3(), CommodityFabric());
  ExecutorOptions options;
  options.record_trace = true;
  Rng rng(1);
  PipelineExecutor executor(&job.cluster, &rng);
  const auto result = executor.Run(job.schedule, job.placement, job.timings, 4, options);
  // Replica 0: 6 stages x (F + B [+ R for non-last]) x 6 microbatches.
  EXPECT_EQ(result.trace.size(), 6u * 6 * 3 - 6 /*last stage has no R*/);
  bool saw_last_stage = false;
  for (const auto& op : result.trace) {
    EXPECT_GE(op.end, op.start);
    saw_last_stage |= op.stage == 5;
  }
  EXPECT_TRUE(saw_last_stage);
  EXPECT_GE(result.trace_allreduce_end, result.trace_allreduce_start);
}

TEST(ExecutorTest, HyperclusterFasterThanCommodity) {
  ExecutorOptions options;
  options.compute_noise_sigma = 0.0;
  options.sample_network = false;
  Rng rng(1);
  TestJob commodity(Gpt2_8_3B(), ScheduleKind::kVaruna, 18, 3, 16, 4, Nc6V3(),
                    CommodityFabric());
  TestJob hyper(Gpt2_8_3B(), ScheduleKind::kVaruna, 18, 3, 16, 4, Dgx2(), HyperclusterFabric());
  PipelineExecutor ec(&commodity.cluster, &rng);
  PipelineExecutor eh(&hyper.cluster, &rng);
  const auto rc = ec.Run(commodity.schedule, commodity.placement, commodity.timings, 4, options);
  const auto rh = eh.Run(hyper.schedule, hyper.placement, hyper.timings, 4, options);
  EXPECT_LT(rh.total_time_s, rc.total_time_s);
}

TEST(ExecutorTest, OpportunismRecoversStallTime) {
  // §3.2's runtime deviation: with tail stalls on gradient transfers, the
  // opportunistic executor beats the same static schedule without deviation.
  TestJob job(Gpt2_2_5B(), ScheduleKind::kVaruna, 9, 1, 100, 4, Nc6V3(), CommodityFabric());
  Schedule strict = job.schedule;
  strict.opportunistic = false;
  Rng rng_a(5);
  Rng rng_b(5);
  PipelineExecutor opportunistic_exec(&job.cluster, &rng_a);
  PipelineExecutor strict_exec(&job.cluster, &rng_b);
  double opportunistic_total = 0.0;
  double strict_total = 0.0;
  for (int run = 0; run < 4; ++run) {
    opportunistic_total +=
        opportunistic_exec.Run(job.schedule, job.placement, job.timings, 4).total_time_s;
    strict_total += strict_exec.Run(strict, job.placement, job.timings, 4).total_time_s;
  }
  EXPECT_LT(opportunistic_total, strict_total);
}

TEST(ExecutorTest, BlockingSendsSlowerThanOverlapped) {
  // §6: Varuna overlaps sends with compute; primitive implementations stall.
  TestJob job(Gpt2_2_5B(), ScheduleKind::kGpipe, 6, 1, 24, 4, Nc6V3(), CommodityFabric());
  ExecutorOptions overlapped;
  overlapped.compute_noise_sigma = 0.0;
  overlapped.sample_network = false;
  ExecutorOptions blocking = overlapped;
  blocking.overlap_communication = false;
  Rng rng(1);
  PipelineExecutor executor(&job.cluster, &rng);
  const double fast = executor.Run(job.schedule, job.placement, job.timings, 4, overlapped)
                          .total_time_s;
  const double slow = executor.Run(job.schedule, job.placement, job.timings, 4, blocking)
                          .total_time_s;
  EXPECT_GT(slow, 1.05 * fast);
}

TEST(ExecutorTest, CpuOffloadAddsTransferTime) {
  TestJob job(Gpt2_2_5B(), ScheduleKind::kVaruna, 9, 1, 8, 4, Nc6V3(), CommodityFabric());
  ExecutorOptions options;
  options.compute_noise_sigma = 0.0;
  options.sample_network = false;
  Rng rng(1);
  PipelineExecutor executor(&job.cluster, &rng);
  const double plain = executor.Run(job.schedule, job.placement, job.timings, 4, options)
                           .total_time_s;
  options.cpu_offload_optimizer = true;
  options.cpu_offload_bytes_per_stage = 12.0 * Gpt2_2_5B().TotalParams() / 9.0;
  const double offloaded = executor.Run(job.schedule, job.placement, job.timings, 4, options)
                               .total_time_s;
  EXPECT_GT(offloaded, plain);
}

TEST(ExecutorTest, SteadyStateRunsAreAllocationFree) {
  // The zero-alloc contract of the PR-5 scratch refactor: after the first
  // mini-batch sizes the retained working set, repeat runs of the same shape
  // must neither grow the scratch nor spill any callback to the heap.
  TestJob job(Gpt2_2_5B(), ScheduleKind::kVaruna, 9, 2, 8, 4, Nc6V3(), CommodityFabric());
  Rng rng(11);
  PipelineExecutor executor(&job.cluster, &rng);
  (void)executor.Run(job.schedule, job.placement, job.timings, 4);
  const uint64_t warm_growths = executor.scratch_growths();
  const uint64_t warm_events = executor.events_processed();
  EXPECT_GT(warm_events, 0u);
  for (int i = 0; i < 3; ++i) {
    (void)executor.Run(job.schedule, job.placement, job.timings, 4);
  }
  EXPECT_EQ(executor.scratch_growths(), warm_growths);
  EXPECT_EQ(executor.callback_heap_fallbacks(), 0u);
  EXPECT_GT(executor.events_processed(), warm_events);
}

TEST(ExecutorTest, ReusedExecutorMatchesFreshExecutors) {
  // Scratch reuse must be invisible: a persistent executor fed N mini-batches
  // produces bit-identical results to N fresh executors drawing from the same
  // Rng stream. Noise and network sampling stay ON so the comparison covers
  // the full draw sequence, not just the deterministic path.
  TestJob job(Gpt2_2_5B(), ScheduleKind::kVaruna, 9, 2, 8, 4, Nc6V3(), CommodityFabric());
  ExecutorOptions options;
  options.record_trace = true;

  Rng persistent_rng(42);
  PipelineExecutor persistent(&job.cluster, &persistent_rng);
  std::vector<MinibatchResult> reused;
  for (int i = 0; i < 3; ++i) {
    reused.push_back(persistent.Run(job.schedule, job.placement, job.timings, 4, options));
  }

  Rng fresh_rng(42);
  for (int i = 0; i < 3; ++i) {
    PipelineExecutor fresh(&job.cluster, &fresh_rng);
    const MinibatchResult expect = fresh.Run(job.schedule, job.placement, job.timings, 4, options);
    EXPECT_DOUBLE_EQ(reused[i].total_time_s, expect.total_time_s);
    EXPECT_DOUBLE_EQ(reused[i].pipeline_time_s, expect.pipeline_time_s);
    EXPECT_DOUBLE_EQ(reused[i].allreduce_time_s, expect.allreduce_time_s);
    EXPECT_DOUBLE_EQ(reused[i].sync_time_s, expect.sync_time_s);
    EXPECT_DOUBLE_EQ(reused[i].mean_busy_fraction, expect.mean_busy_fraction);
    ASSERT_EQ(reused[i].trace.size(), expect.trace.size());
    for (size_t op = 0; op < expect.trace.size(); ++op) {
      EXPECT_DOUBLE_EQ(reused[i].trace[op].start, expect.trace[op].start);
      EXPECT_DOUBLE_EQ(reused[i].trace[op].end, expect.trace[op].end);
    }
  }
}

}  // namespace
}  // namespace varuna
