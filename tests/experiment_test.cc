#include <gtest/gtest.h>

#include "src/varuna/experiment.h"
#include "src/varuna/varuna.h"

namespace varuna {
namespace {

PipelineEvalRequest BaseRequest(TransformerSpec spec, SystemUnderTest system, int depth,
                                int replicas) {
  PipelineEvalRequest request;
  request.spec = std::move(spec);
  request.system = system;
  request.pipeline_depth = depth;
  request.data_parallel = replicas;
  request.microbatch_size = 4;
  request.total_batch = 2400;
  request.runs = 2;
  return request;
}

TEST(ExperimentTest, VarunaFeasibleBaseline) {
  const auto result =
      EvaluatePipeline(BaseRequest(Gpt2_2_5B(), SystemUnderTest::kVaruna, 9, 4));
  ASSERT_TRUE(result.feasible) << result.infeasible_reason;
  EXPECT_GT(result.examples_per_s_per_gpu, 0.5);
  EXPECT_LT(result.examples_per_s_per_gpu, 5.0);
  EXPECT_GT(result.tflops_per_gpu, 5.0);
  EXPECT_EQ(result.gpus_used, 36);
  EXPECT_EQ(result.num_microbatches, 150);
}

TEST(ExperimentTest, PipeDreamOomsOnMassiveModels) {
  const auto big =
      EvaluatePipeline(BaseRequest(Gpt2_8_3B(), SystemUnderTest::kPipeDreamAsync, 18, 4));
  EXPECT_FALSE(big.feasible);
  EXPECT_NE(big.infeasible_reason.find("OOM"), std::string::npos);
  const auto medium =
      EvaluatePipeline(BaseRequest(Gpt2_2_5B(), SystemUnderTest::kPipeDreamAsync, 9, 8));
  EXPECT_FALSE(medium.feasible);
}

TEST(ExperimentTest, ShallowDepthOomsForBigModel) {
  const auto result =
      EvaluatePipeline(BaseRequest(Gpt2_8_3B(), SystemUnderTest::kVaruna, 4, 1));
  EXPECT_FALSE(result.feasible);
  EXPECT_NE(result.infeasible_reason.find("OOM"), std::string::npos);
}

TEST(ExperimentTest, Table6Ordering) {
  // Varuna > Megatron-1F1B > DeepSpeed under commodity jitter; PipeDream OOM.
  const auto varuna =
      EvaluatePipeline(BaseRequest(Gpt2_2_5B(), SystemUnderTest::kVaruna, 9, 8));
  const auto one_f_one_b =
      EvaluatePipeline(BaseRequest(Gpt2_2_5B(), SystemUnderTest::kOneFOneB, 9, 8));
  const auto deepspeed =
      EvaluatePipeline(BaseRequest(Gpt2_2_5B(), SystemUnderTest::kDeepSpeed, 9, 8));
  ASSERT_TRUE(varuna.feasible);
  ASSERT_TRUE(one_f_one_b.feasible);
  ASSERT_TRUE(deepspeed.feasible);
  EXPECT_GT(varuna.examples_per_s_per_gpu, one_f_one_b.examples_per_s_per_gpu);
  EXPECT_GT(one_f_one_b.examples_per_s_per_gpu, deepspeed.examples_per_s_per_gpu);
  // Gaps in the paper's range: Varuna leads 1F1B by ~10-30%.
  const double lead = varuna.examples_per_s_per_gpu / one_f_one_b.examples_per_s_per_gpu;
  EXPECT_GT(lead, 1.05);
  EXPECT_LT(lead, 1.6);
}

TEST(ExperimentTest, NetworkSlowdownHurtsGpipeMoreThanVaruna) {
  // Table 5's degradation sweep.
  auto eval = [&](SystemUnderTest system, double slowdown) {
    PipelineEvalRequest request = BaseRequest(Gpt2_2_5B(), system, 9, 2);
    request.network_slowdown = slowdown;
    return EvaluatePipeline(request).examples_per_s_per_gpu;
  };
  const double varuna_drop = eval(SystemUnderTest::kVaruna, 1.0) /
                             eval(SystemUnderTest::kVaruna, 2.0);
  const double gpipe_drop =
      eval(SystemUnderTest::kGpipe, 1.0) / eval(SystemUnderTest::kGpipe, 2.0);
  EXPECT_LT(varuna_drop, gpipe_drop);
  EXPECT_LT(varuna_drop, 1.10);  // Varuna nearly flat.
}

TEST(ExperimentTest, HyperclusterBeatsCommodityAtEqualConfig) {
  PipelineEvalRequest commodity = BaseRequest(Gpt2_8_3B(), SystemUnderTest::kVaruna, 18, 4);
  commodity.total_batch = 8192;
  PipelineEvalRequest hyper = commodity;
  hyper.vm = Dgx2();
  hyper.fabric = HyperclusterFabric();
  const auto lp = EvaluatePipeline(commodity);
  const auto hc = EvaluatePipeline(hyper);
  ASSERT_TRUE(lp.feasible);
  ASSERT_TRUE(hc.feasible);
  EXPECT_GT(hc.examples_per_s_per_gpu, lp.examples_per_s_per_gpu);
}

TEST(ExperimentTest, CpuOffloadEnables200B) {
  PipelineEvalRequest request = BaseRequest(Gpt2_200B(), SystemUnderTest::kVaruna, 100, 1);
  request.microbatch_size = 1;
  request.total_batch = 512;
  request.runs = 1;
  request.cpu_offload_optimizer = false;
  EXPECT_FALSE(EvaluatePipeline(request).feasible);
  request.cpu_offload_optimizer = true;
  const auto result = EvaluatePipeline(request);
  ASSERT_TRUE(result.feasible) << result.infeasible_reason;
  // Paper: 0.022 ex/s/GPU, 27.3 TFlops/s/GPU.
  EXPECT_NEAR(result.examples_per_s_per_gpu, 0.022, 0.008);
  EXPECT_NEAR(result.tflops_per_gpu, 27.3, 8.0);
}

TEST(ExperimentTest, SystemNames) {
  EXPECT_EQ(ToString(SystemUnderTest::kVaruna), "Varuna");
  EXPECT_EQ(ToString(SystemUnderTest::kPipeDreamAsync), "PipeDream");
}

}  // namespace
}  // namespace varuna
