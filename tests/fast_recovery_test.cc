// Trainer-level fast recovery path: FastRecoveryStormCampaign runs the same
// seeded storms as StormyChaosCampaign with delta checkpoint chains,
// locality-aware restore pricing and live handoff on voluntary morphs
// switched on. These tests pin the three session-level contracts: campaigns
// stay bit-replayable with the fast path on, identical fault schedules spend
// less downtime, and involuntary preemptions still go through the
// rollback+restore fallback (handoff never replaces it).
#include <gtest/gtest.h>

#include <cstdint>

#include "src/chaos/chaos.h"

namespace varuna {
namespace {

TEST(FastRecoveryTest, CampaignReplayIsBitIdentical) {
  for (const uint64_t seed : {1ull, 5ull, 9ull}) {
    const ChaosCampaignSpec spec = FastRecoveryStormCampaign(seed);
    const ChaosReport first = RunChaosCampaign(spec);
    const ChaosReport replay = RunChaosCampaign(spec);
    EXPECT_EQ(first.fingerprint, replay.fingerprint) << "seed " << seed;
    EXPECT_TRUE(first.trace == replay.trace) << "seed " << seed;
  }
}

TEST(FastRecoveryTest, ReducesDowntimeOnIdenticalFaultSchedules) {
  double legacy_stalled_s = 0.0;
  double fast_stalled_s = 0.0;
  int64_t delta_checkpoints = 0;
  int64_t live_handoffs = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const ChaosReport legacy = RunChaosCampaign(StormyChaosCampaign(seed));
    const ChaosReport fast = RunChaosCampaign(FastRecoveryStormCampaign(seed));
    // With the features off nothing on the fast path may fire.
    EXPECT_EQ(legacy.stats.live_handoffs, 0) << "seed " << seed;
    EXPECT_EQ(legacy.stats.delta_checkpoints, 0) << "seed " << seed;
    legacy_stalled_s += legacy.stats.stalled_s;
    fast_stalled_s += fast.stats.stalled_s;
    delta_checkpoints += fast.stats.delta_checkpoints;
    live_handoffs += fast.stats.live_handoffs;
  }
  // Identical storms, identical seeds: the only difference is the recovery
  // machinery, so total downtime must drop and the new machinery must have
  // actually run.
  EXPECT_LT(fast_stalled_s, legacy_stalled_s);
  EXPECT_GT(delta_checkpoints, 0);
  EXPECT_GT(live_handoffs, 0);
}

TEST(FastRecoveryTest, InvoluntaryPreemptionsStillRestoreFromCheckpoints) {
  int64_t restarts = 0;
  double restore_tier_s = 0.0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const ChaosReport report = RunChaosCampaign(FastRecoveryStormCampaign(seed));
    restarts += report.stats.restarts;
    restore_tier_s += report.stats.restore_ssd_s + report.stats.restore_peer_s +
                      report.stats.restore_cloud_s;
  }
  // Live handoff covers only voluntary morphs: storm preemptions still force
  // rollback+restore recoveries, priced through the locality tiers.
  EXPECT_GT(restarts, 0);
  EXPECT_GT(restore_tier_s, 0.0);
}

}  // namespace
}  // namespace varuna
