// Liveput policy battery (src/morph/liveput.h): the online availability
// predictor converges to the true Markov transition parameters of a
// synthetic chain, the oracle mode reproduces the true hazard, the liveput
// objective is monotone in survival, and — the headline — every policy mode
// (reactive, proactive, oracle-proactive) is bit-replayable on seeded chaos
// campaigns, with a ≥20-campaign head-to-head asserting the proactive policy
// actually pays: at least as many mini-batches as reactive, strictly fewer
// rolled back, and the oracle as an upper bound on what prediction buys.
// Cold and degenerate regimes (empty history, stable market, capacity
// collapse) must fall back to the reactive decision sequence *exactly* —
// identical ElasticTrace fingerprints, not merely similar outcomes.
#include "src/morph/liveput.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/chaos.h"
#include "src/common/rng.h"

namespace varuna {
namespace {

// --- AvailabilityPredictor: convergence on a synthetic Markov chain. --------

TEST(AvailabilityPredictorTest, ConvergesToTrueMarkovParameters) {
  // True 2-state chain, discretized at the predictor's window: each window an
  // up node dies w.p. p and a down node restores w.p. q. The predictor sees
  // only the event stream; decay is disabled so the cumulative estimator's
  // convergence is what is on trial.
  constexpr int kNodes = 24;
  constexpr double kTrueP = 0.04;
  constexpr double kTrueQ = 0.30;
  constexpr int kWindows = 4000;

  PredictorOptions options;
  options.window_s = 60.0;
  options.decay_tau_s = 0.0;  // Pure cumulative estimator.
  AvailabilityPredictor predictor(options);
  predictor.SetDemandHint(kNodes);

  Rng rng(0x11fe);
  int up = 0;
  for (int window = 0; window < kWindows; ++window) {
    const double now_s = options.window_s * static_cast<double>(window);
    predictor.ObserveQuiet(now_s);  // Accrue the window's exposure first.
    int died = 0;
    int restored = 0;
    for (int node = 0; node < up; ++node) {
      died += rng.NextDouble() < kTrueP ? 1 : 0;
    }
    for (int node = 0; node < kNodes - up; ++node) {
      restored += rng.NextDouble() < kTrueQ ? 1 : 0;
    }
    for (int i = 0; i < died; ++i) {
      predictor.ObservePreemption(now_s);
    }
    for (int i = 0; i < restored; ++i) {
      predictor.ObserveGrant(now_s);
    }
    up += restored - died;
  }

  EXPECT_FALSE(predictor.Cold());
  EXPECT_EQ(predictor.up_vms(), up);
  EXPECT_NEAR(predictor.PreemptProbabilityPerWindow(), kTrueP, 0.15 * kTrueP);
  EXPECT_NEAR(predictor.RestoreProbabilityPerWindow(), kTrueQ, 0.15 * kTrueQ);
  // Survival over a horizon is the per-window estimate compounded.
  const double horizon_s = 10.0 * options.window_s;
  EXPECT_NEAR(predictor.NodeSurvival(horizon_s),
              std::pow(1.0 - kTrueP, 10.0), 0.05);
}

TEST(AvailabilityPredictorTest, EmptyHistoryIsColdWithPriorEstimates) {
  AvailabilityPredictor predictor;
  EXPECT_TRUE(predictor.Cold());
  // Laplace priors: alpha / 2 alpha = 0.5 per window — pure prior, no data.
  EXPECT_DOUBLE_EQ(predictor.PreemptProbabilityPerWindow(), 0.5);
  EXPECT_DOUBLE_EQ(predictor.RestoreProbabilityPerWindow(), 0.5);
  const double survival = predictor.NodeSurvival(600.0);
  EXPECT_GE(survival, 0.0);
  EXPECT_LE(survival, 1.0);
  EXPECT_DOUBLE_EQ(predictor.PlacementSurvival(0, 600.0), 1.0);
}

TEST(AvailabilityPredictorTest, WarmupGatesRequireBothEventsAndExposure) {
  PredictorOptions options;
  options.min_exposure_windows = 10.0;
  options.min_preemption_events = 3;
  AvailabilityPredictor predictor(options);
  predictor.SetDemandHint(4);
  for (int i = 0; i < 4; ++i) {
    predictor.ObserveGrant(static_cast<double>(i));
  }
  // Plenty of exposure, zero preemptions: still cold.
  predictor.ObserveQuiet(4.0 + 20.0 * options.window_s);
  EXPECT_TRUE(predictor.Cold());
  predictor.ObservePreemption(4.0 + 21.0 * options.window_s);
  predictor.ObservePreemption(4.0 + 22.0 * options.window_s);
  EXPECT_TRUE(predictor.Cold());  // Two events < the three required.
  predictor.ObservePreemption(4.0 + 23.0 * options.window_s);
  EXPECT_FALSE(predictor.Cold());
}

// --- Oracle mode. ------------------------------------------------------------

TEST(AvailabilityPredictorTest, OracleReproducesTrueHazard) {
  AvailabilityPredictor predictor;
  const double hazard = 1.0 / 3600.0;
  predictor.EnableOracle(hazard);
  EXPECT_TRUE(predictor.oracle());
  EXPECT_FALSE(predictor.Cold());  // Oracle is never cold.
  const double horizon_s = 900.0;
  EXPECT_NEAR(predictor.NodeSurvival(horizon_s), std::exp(-hazard * horizon_s), 1e-12);
  EXPECT_NEAR(predictor.PlacementSurvival(8, horizon_s),
              std::pow(std::exp(-hazard * horizon_s), 8.0), 1e-12);
}

TEST(AvailabilityPredictorTest, OracleForecastStormsDiscountSurvival) {
  AvailabilityPredictor predictor;
  predictor.EnableOracle(1.0 / 3600.0);
  predictor.SetDemandHint(8);
  for (int i = 0; i < 8; ++i) {
    predictor.ObserveGrant(0.0);
  }
  const double calm = predictor.NodeSurvival(900.0);
  predictor.ForecastStorm(/*at_s=*/600.0, /*vms=*/4);
  const double stormy = predictor.NodeSurvival(900.0);
  EXPECT_LT(stormy, calm);
  // A forecast beyond the horizon does not discount it.
  AvailabilityPredictor far;
  far.EnableOracle(1.0 / 3600.0);
  far.ObserveGrant(0.0);
  const double before = far.NodeSurvival(300.0);
  far.ForecastStorm(/*at_s=*/1200.0, /*vms=*/4);
  EXPECT_DOUBLE_EQ(far.NodeSurvival(300.0), before);
  // Fired storms are history: once time passes the forecast, it drops.
  predictor.ObserveQuiet(700.0);
  EXPECT_NEAR(predictor.NodeSurvival(900.0), calm, 1e-12);
}

// --- LiveputObjective: monotonicity and amortization. ------------------------

TEST(LiveputObjectiveTest, LiveputAndScoreAreMonotoneInSurvival) {
  AvailabilityPredictor predictor;
  const LiveputObjective amortized(&predictor, /*horizon_s=*/900.0,
                                   /*gpus_per_vm=*/1, /*recovery_cost_s=*/120.0);
  const LiveputObjective full_loss(&predictor, 900.0, 1);  // recovery < 0.
  double previous_liveput = -1.0;
  double previous_score = -1.0;
  for (double survival = 0.0; survival <= 1.0; survival += 0.05) {
    const double liveput = LiveputObjective::Liveput(100.0, survival);
    const double score = amortized.Score(100.0, survival);
    EXPECT_GT(liveput, previous_liveput);
    EXPECT_GT(score, previous_score);
    // Amortizing can only help, and survival-weighting can only discount.
    EXPECT_GE(score, liveput - 1e-12);
    EXPECT_LE(score, 100.0 + 1e-12);
    // Full-horizon recovery degrades the score to the pure liveput product.
    EXPECT_NEAR(full_loss.Score(100.0, survival), liveput, 1e-12);
    previous_liveput = liveput;
    previous_score = score;
  }
}

TEST(LiveputObjectiveTest, PlacementSurvivalIsMonotoneInVmsUsed) {
  AvailabilityPredictor predictor;
  predictor.SetDemandHint(8);
  predictor.ObserveGrant(0.0);
  predictor.ObservePreemption(3600.0);
  double previous = 2.0;
  for (int vms = 1; vms <= 16; ++vms) {
    const double survival = predictor.PlacementSurvival(vms, 900.0);
    EXPECT_GT(survival, 0.0);
    EXPECT_LT(survival, previous);  // Strictly more VMs, strictly more risk.
    previous = survival;
  }
}

// --- Fingerprint: rotation on learning, stability on quiet accrual. ----------

TEST(AvailabilityPredictorTest, FingerprintRotatesOnObservationsOnly) {
  AvailabilityPredictor predictor;
  predictor.SetDemandHint(4);
  predictor.ObserveGrant(0.0);
  const uint64_t after_grant = predictor.Fingerprint();
  // Quiet accrual within one window (and one decay quantum) is not a
  // learning step: the candidate-memo context must hold still.
  predictor.ObserveQuiet(1.0);
  EXPECT_EQ(predictor.Fingerprint(), after_grant);
  predictor.ObservePreemption(2.0);
  EXPECT_NE(predictor.Fingerprint(), after_grant);
  // Forecasts are decision-relevant state too (oracle pre-migration).
  const uint64_t before_forecast = predictor.Fingerprint();
  predictor.ForecastStorm(500.0, 2);
  EXPECT_NE(predictor.Fingerprint(), before_forecast);
}

// --- Campaign helpers. -------------------------------------------------------

ChaosCampaignSpec StormySpec(uint64_t seed, MorphPolicy policy) {
  ChaosCampaignSpec spec = StormyChaosCampaign(seed);
  spec.options.morph_policy = policy;
  return spec;
}

// --- Bit-identical replay of every policy mode. ------------------------------

TEST(LiveputReplayTest, ProactivePoliciesReplayBitIdentically) {
  for (const MorphPolicy policy :
       {MorphPolicy::kProactive, MorphPolicy::kOracleProactive}) {
    for (const uint64_t seed : {5u, 23u}) {
      SCOPED_TRACE("policy " + std::to_string(static_cast<int>(policy)) +
                   " seed " + std::to_string(seed));
      const ChaosReport first = RunChaosCampaign(StormySpec(seed, policy));
      const ChaosReport second = RunChaosCampaign(StormySpec(seed, policy));
      EXPECT_EQ(first.fingerprint, second.fingerprint);
      EXPECT_EQ(first.stats.minibatches_done, second.stats.minibatches_done);
      EXPECT_EQ(first.stats.premigrated_shards, second.stats.premigrated_shards);
      EXPECT_EQ(first.stats.proactive_morphs, second.stats.proactive_morphs);
    }
  }
}

TEST(LiveputReplayTest, PooledSearchMatchesSerialUnderProactivePolicy) {
  // The liveput argmax runs over the (possibly pooled) sweep: thread count
  // must never leak into the decision sequence.
  for (const MorphPolicy policy :
       {MorphPolicy::kProactive, MorphPolicy::kOracleProactive}) {
    SCOPED_TRACE(static_cast<int>(policy));
    ChaosCampaignSpec serial = StormySpec(11, policy);
    serial.options.search_threads = 1;
    ChaosCampaignSpec pooled = StormySpec(11, policy);
    pooled.options.search_threads = 3;
    EXPECT_EQ(RunChaosCampaign(serial).fingerprint,
              RunChaosCampaign(pooled).fingerprint);
  }
}

// --- The head-to-head: does prediction actually pay? -------------------------

struct PolicyTotals {
  int64_t minibatches = 0;
  int64_t rolled_back = 0;
  int64_t restarts = 0;
  int64_t premigrated_shards = 0;
  int64_t proactive_morphs = 0;
};

PolicyTotals RunPolicy(MorphPolicy policy, int seeds) {
  PolicyTotals totals;
  for (uint64_t seed = 1; seed <= static_cast<uint64_t>(seeds); ++seed) {
    const ChaosReport report = RunChaosCampaign(StormySpec(seed, policy));
    totals.minibatches += report.stats.minibatches_done;
    totals.rolled_back += report.stats.minibatches_rolled_back;
    totals.restarts += report.stats.restarts;
    totals.premigrated_shards += report.stats.premigrated_shards;
    totals.proactive_morphs += report.stats.proactive_morphs;
  }
  return totals;
}

TEST(LiveputHeadToHeadTest, ProactiveBeatsReactiveOverTwentyStormCampaigns) {
  constexpr int kSeeds = 20;
  const PolicyTotals reactive = RunPolicy(MorphPolicy::kReactive, kSeeds);
  const PolicyTotals proactive = RunPolicy(MorphPolicy::kProactive, kSeeds);
  const PolicyTotals oracle = RunPolicy(MorphPolicy::kOracleProactive, kSeeds);

  // Reactive never pre-migrates; the proactive policies demonstrably do.
  EXPECT_EQ(reactive.premigrated_shards, 0);
  EXPECT_EQ(reactive.proactive_morphs, 0);
  EXPECT_GT(proactive.premigrated_shards, 0);
  EXPECT_GT(oracle.premigrated_shards, 0);

  // The acceptance bar: across the batch the online proactive policy
  // completes at least as many mini-batches as reactive while strictly
  // reducing the rolled-back count.
  EXPECT_GE(proactive.minibatches, reactive.minibatches);
  EXPECT_LT(proactive.rolled_back, reactive.rolled_back);

  // The oracle upper-bounds what prediction buys: with the true hazard and
  // the storm schedule in hand it avoids at least as much re-work as the
  // online estimator, without giving up reactive-level throughput.
  EXPECT_LE(oracle.rolled_back, proactive.rolled_back);
  EXPECT_GE(oracle.minibatches, reactive.minibatches);
}

// A single full campaign's trace fingerprint, pinned: any change to the
// proactive decision sequence — predictor estimates, objective scoring,
// pre-migration trigger arithmetic — must be a conscious golden update, not
// an accident. (Seed 7 premigrates and morphs on today's tuning.)
TEST(LiveputHeadToHeadTest, GoldenProactiveCampaignFingerprint) {
  const ChaosReport report = RunChaosCampaign(StormySpec(7, MorphPolicy::kProactive));
  EXPECT_GT(report.stats.premigrated_shards, 0);  // The policy is exercised.
  // Golden updated when live_handoffs joined the ElasticTrace serialization
  // (fast-recovery PR): the decision sequence itself was verified unchanged —
  // every other replay/equivalence test passed without modification.
  EXPECT_EQ(report.fingerprint, 0x1388bd578a6004bfULL)
      << "proactive decision sequence changed: new fingerprint 0x" << std::hex
      << report.fingerprint;
}

// --- Cold and degenerate regimes fall back to reactive, exactly. -------------

TEST(LiveputFallbackTest, StableMarketKeepsPredictorColdAndMatchesReactive) {
  // No hazard, no storms, no volatility: the predictor never observes a
  // preemption, stays cold, and the proactive session's decision sequence is
  // the reactive one bit-for-bit.
  auto make = [](MorphPolicy policy) {
    ChaosCampaignSpec spec = DefaultChaosCampaign(77);
    spec.preemption_hazard_per_s = 0.0;
    spec.volatility = 0.0;
    spec.options.morph_policy = policy;
    return spec;
  };
  const ChaosReport reactive = RunChaosCampaign(make(MorphPolicy::kReactive));
  const ChaosReport proactive = RunChaosCampaign(make(MorphPolicy::kProactive));
  EXPECT_EQ(proactive.fingerprint, reactive.fingerprint);
  EXPECT_EQ(proactive.stats.premigrated_shards, 0);
  EXPECT_EQ(proactive.stats.proactive_morphs, 0);
  EXPECT_GT(proactive.stats.minibatches_done, 0);
}

TEST(LiveputFallbackTest, CapacityCollapseBelowWarmupMatchesReactive) {
  // A capacity crash that reclaims only two VMs stays under the predictor's
  // three-preemption warm-up gate: still cold, still exactly reactive —
  // including the degraded-mode machinery the crash exercises.
  auto make = [](MorphPolicy policy) {
    ChaosCampaignSpec spec = DefaultChaosCampaign(78);
    spec.preemption_hazard_per_s = 0.0;
    spec.volatility = 0.0;
    ChaosAction crash;
    crash.at_s = 1800.0;
    crash.kind = ChaosActionKind::kCapacityCrash;
    crash.magnitude = 0.9;  // ceil(0.1 * 20) = 2 reclaimed < 3 required.
    crash.duration_s = 900.0;
    spec.plan = ChaosPlan::Scripted({crash});
    spec.options.morph_policy = policy;
    return spec;
  };
  const ChaosReport reactive = RunChaosCampaign(make(MorphPolicy::kReactive));
  const ChaosReport proactive = RunChaosCampaign(make(MorphPolicy::kProactive));
  EXPECT_EQ(proactive.fingerprint, reactive.fingerprint);
  EXPECT_EQ(proactive.stats.premigrated_shards, 0);
}

}  // namespace
}  // namespace varuna
