#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/vm.h"
#include "src/manager/checkpoint.h"
#include "src/manager/elastic_trainer.h"
#include "src/model/transformer.h"
#include "src/sim/engine.h"

namespace varuna {
namespace {

TEST(CheckpointStoreTest, LocalThenCloud) {
  SimEngine engine;
  CheckpointOptions options;
  CheckpointStore store(&engine, options);
  EXPECT_EQ(store.LatestRestorable(true), -1);
  const double stall = store.BeginCheckpoint(7, 2.5e9, 5);
  // Sharded write: 14 B/param * 2.5e9 / 5 replicas / 1 GB/s = 7 s.
  EXPECT_NEAR(stall, 7.0, 0.1);
  EXPECT_EQ(store.latest_local(), 7);
  EXPECT_EQ(store.LatestRestorable(/*local_shards_lost=*/false), 7);
  EXPECT_EQ(store.LatestRestorable(/*local_shards_lost=*/true), -1);
  engine.Run();  // Background upload completes.
  EXPECT_EQ(store.LatestRestorable(/*local_shards_lost=*/true), 7);
}

TEST(CheckpointStoreTest, MoreReplicasShardFaster) {
  SimEngine engine;
  CheckpointStore store(&engine, CheckpointOptions());
  const double d1 = store.BeginCheckpoint(0, 1e9, 1);
  const double d8 = store.BeginCheckpoint(1, 1e9, 8);
  EXPECT_NEAR(d1 / d8, 8.0, 0.01);
}

TEST(CheckpointStoreTest, RestoreIncludesSetupCost) {
  SimEngine engine;
  CheckpointOptions options;
  CheckpointStore store(&engine, options);
  EXPECT_GE(store.RestoreDuration(1e9, 4), options.restore_setup_s);
}

struct SessionFixture {
  SimEngine engine;
  Cluster cluster{CommodityFabric()};
  SpotMarket market{&engine, Rng(17), 60.0};
  int pool = 0;
  std::unique_ptr<ElasticTrainer> trainer;

  explicit SessionFixture(const TransformerSpec& spec, int max_vms, TrainerOptions options,
                          SpotPoolDynamics dynamics = {}) {
    pool = market.AddPool(Nc6V3(), max_vms, dynamics);
    trainer = std::make_unique<ElasticTrainer>(&engine, &cluster, &market, pool, Nc6V3(), spec,
                                               options);
    trainer->Start();
    market.Start();
  }
};

SpotPoolDynamics StableDynamics() {
  SpotPoolDynamics dynamics;
  dynamics.mean_availability = 1.0;
  dynamics.volatility = 0.0;
  dynamics.preemption_hazard = 0.0;
  dynamics.max_grants_per_tick = 64;
  return dynamics;
}

TEST(ElasticTrainerTest, BootstrapsAndTrains) {
  TrainerOptions options;
  options.total_batch = 2400;
  options.demand_vms = 40;
  SessionFixture fx(Gpt2_2_5B(), 40, options, StableDynamics());
  fx.engine.RunUntil(4.0 * kHour);
  EXPECT_TRUE(fx.trainer->job_running());
  EXPECT_GT(fx.trainer->stats().minibatches_done, 10);
  EXPECT_GT(fx.trainer->stats().examples_processed, 10 * 2400.0);
  ASSERT_TRUE(fx.trainer->current_config().has_value());
  EXPECT_LE(fx.trainer->current_config()->gpus_used, 40);
}

TEST(ElasticTrainerTest, WritesCheckpointsPeriodically) {
  TrainerOptions options;
  options.total_batch = 2400;
  options.demand_vms = 30;
  options.checkpoint_every_minibatches = 5;
  SessionFixture fx(Gpt2_2_5B(), 30, options, StableDynamics());
  fx.engine.RunUntil(4.0 * kHour);
  const auto& stats = fx.trainer->stats();
  EXPECT_GT(stats.checkpoints, 3);
  EXPECT_NEAR(static_cast<double>(stats.minibatches_done) / stats.checkpoints, 5.0, 2.0);
}

TEST(ElasticTrainerTest, SurvivesPreemptions) {
  TrainerOptions options;
  options.total_batch = 2400;
  options.demand_vms = 40;
  options.checkpoint_every_minibatches = 5;
  SpotPoolDynamics dynamics = StableDynamics();
  dynamics.preemption_hazard = 1.0 / (6.0 * kHour);  // Aggressive churn.
  SessionFixture fx(Gpt2_2_5B(), 40, options, dynamics);
  fx.engine.RunUntil(12.0 * kHour);
  const auto& stats = fx.trainer->stats();
  EXPECT_GT(stats.preemptions_hit, 0);
  EXPECT_GT(stats.morphs, 1);
  EXPECT_GT(stats.minibatches_done, 20);
  EXPECT_GE(stats.examples_processed, 0.0);
}

TEST(ElasticTrainerTest, DetectsFailStutter) {
  TrainerOptions options;
  options.total_batch = 2400;
  options.demand_vms = 36;
  SessionFixture fx(Gpt2_2_5B(), 36, options, StableDynamics());
  fx.engine.RunUntil(2.0 * kHour);
  ASSERT_TRUE(fx.trainer->job_running());
  // Degrade one VM by 30%; the manager should notice within a mini-batch or
  // two and replace it.
  fx.cluster.SetSlowFactor(3, 1.3);
  fx.engine.RunUntil(4.0 * kHour);
  EXPECT_GT(fx.trainer->stats().stutters_detected, 0);
  bool replaced = false;
  for (const auto& event : fx.trainer->stats().events) {
    replaced |= event.kind == "replace";
  }
  EXPECT_TRUE(replaced);
}

TEST(ElasticTrainerTest, GrowsWhenCapacityArrives) {
  TrainerOptions options;
  options.total_batch = 8192;
  options.demand_vms = 20;
  options.provision_check_interval_s = 600.0;
  SessionFixture fx(Gpt2_2_5B(), 80, options, StableDynamics());
  fx.engine.RunUntil(2.0 * kHour);
  ASSERT_TRUE(fx.trainer->current_config().has_value());
  const int gpus_before = fx.trainer->current_config()->gpus_used;
  // Raise demand; the market grants more VMs; the provision tick should morph
  // into a bigger configuration.
  fx.market.SetDemand(fx.pool, 80);
  fx.engine.RunUntil(6.0 * kHour);
  ASSERT_TRUE(fx.trainer->current_config().has_value());
  EXPECT_GT(fx.trainer->current_config()->gpus_used, gpus_before);
  EXPECT_GT(fx.trainer->stats().morphs, 1);
}

TEST(ElasticTrainerTest, TimelineRecordsSamplesAndEvents) {
  TrainerOptions options;
  options.total_batch = 2400;
  options.demand_vms = 30;
  SessionFixture fx(Gpt2_2_5B(), 30, options, StableDynamics());
  fx.engine.RunUntil(2.0 * kHour);
  const auto& stats = fx.trainer->stats();
  ASSERT_FALSE(stats.samples.empty());
  ASSERT_FALSE(stats.events.empty());
  EXPECT_EQ(stats.events.front().kind, "configure");
  for (const auto& sample : stats.samples) {
    EXPECT_GT(sample.examples_per_s, 0.0);
    EXPECT_GT(sample.gpus_in_use, 0);
  }
}

}  // namespace
}  // namespace varuna
