#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/model/cutpoints.h"
#include "src/model/op_graph.h"
#include "src/pipeline/memory.h"

namespace varuna {
namespace {

MemoryBudget V100Budget() {
  MemoryBudget budget;
  budget.gpu_memory_bytes = 16.0 * kGiB;
  return budget;
}

MemoryModelInputs InputsFor(const TransformerSpec& spec, int depth, int stage, int m, int nm) {
  MemoryModelInputs inputs;
  inputs.stage_params = spec.TotalParams() / depth;
  inputs.input_activation_bytes_per_example = spec.BoundaryActivationBytes();
  inputs.full_activation_bytes_per_example =
      BlockFullActivationBytes(spec) * spec.num_layers / depth;
  inputs.microbatch_size = m;
  inputs.num_microbatches = nm;
  inputs.pipeline_depth = depth;
  inputs.stage_index = stage;
  return inputs;
}

TEST(MemoryTest, SixteenBytesPerParameter) {
  MemoryModelInputs inputs;
  inputs.stage_params = 1e9;
  const auto estimate = EstimateStageMemory(ScheduleKind::kVaruna, inputs);
  EXPECT_DOUBLE_EQ(estimate.parameter_state_bytes, 16e9);
}

TEST(MemoryTest, CpuOffloadShrinksResidentState) {
  MemoryModelInputs inputs;
  inputs.stage_params = 1e9;
  inputs.cpu_offload_optimizer = true;
  const auto estimate = EstimateStageMemory(ScheduleKind::kVaruna, inputs);
  EXPECT_DOUBLE_EQ(estimate.parameter_state_bytes, 4e9);
}

TEST(MemoryTest, Gpt2_8_3B_FitsAt18StagesNotAt4) {
  const TransformerSpec spec = Gpt2_8_3B();
  const auto fits_18 =
      EstimateStageMemory(ScheduleKind::kVaruna, InputsFor(spec, 18, 1, 4, 32));
  EXPECT_TRUE(Fits(fits_18, V100Budget()));
  const auto fits_4 = EstimateStageMemory(ScheduleKind::kVaruna, InputsFor(spec, 4, 1, 4, 32));
  EXPECT_FALSE(Fits(fits_4, V100Budget()));
}

TEST(MemoryTest, PipeDreamWeightVersionsExplode) {
  // Table 6: PipeDream OOMs on the 8.3B model at depth 18 because stage 0
  // stashes up to P weight versions.
  const TransformerSpec spec = Gpt2_8_3B();
  const auto varuna =
      EstimateStageMemory(ScheduleKind::kVaruna, InputsFor(spec, 18, 0, 4, 32));
  const auto pipedream = EstimatePipeDreamStageMemory(InputsFor(spec, 18, 0, 4, 32));
  EXPECT_TRUE(Fits(varuna, V100Budget()));
  EXPECT_FALSE(Fits(pipedream, V100Budget()));
  EXPECT_GT(pipedream.weight_versions_bytes, 10e9);
}

TEST(MemoryTest, PipeDream2_5BAlsoOoms) {
  const TransformerSpec spec = Gpt2_2_5B();
  const auto pipedream = EstimatePipeDreamStageMemory(InputsFor(spec, 9, 0, 4, 32));
  EXPECT_FALSE(Fits(pipedream, V100Budget()));
}

TEST(MemoryTest, OneFOneBStashBoundedByDepth) {
  const TransformerSpec spec = Gpt2_2_5B();
  const auto estimate =
      EstimateStageMemory(ScheduleKind::kOneFOneB, InputsFor(spec, 9, 0, 4, 64));
  const auto varuna = EstimateStageMemory(ScheduleKind::kVaruna, InputsFor(spec, 9, 0, 4, 64));
  // 1F1B keeps at most P in-flight input stashes; GPipe-style keeps Nm.
  EXPECT_LT(estimate.input_stash_bytes, varuna.input_stash_bytes);
}

TEST(MemoryTest, MinFittingDepthReasonable) {
  const TransformerSpec spec = Gpt2_8_3B();
  const OpGraph graph = BuildTransformerOpGraph(spec);
  const auto sections = IdentifyCutPoints(graph, spec.num_layers);
  ASSERT_TRUE(sections.ok());
  const auto depth = MinFittingDepth(ScheduleKind::kVaruna, spec, sections.value(), 4, 32,
                                     V100Budget());
  ASSERT_TRUE(depth.ok());
  EXPECT_GE(depth.value(), 10);
  EXPECT_LE(depth.value(), 24);
}

TEST(MemoryTest, MinFittingDepthSmallModelIsOne) {
  const TransformerSpec spec = BertLarge();
  const OpGraph graph = BuildTransformerOpGraph(spec);
  const auto sections = IdentifyCutPoints(graph, spec.num_layers);
  ASSERT_TRUE(sections.ok());
  const auto depth =
      MinFittingDepth(ScheduleKind::kVaruna, spec, sections.value(), 8, 16, V100Budget());
  ASSERT_TRUE(depth.ok());
  EXPECT_EQ(depth.value(), 1);
}

TEST(MemoryTest, HugeModelCanNeedCpuOffload) {
  // 200B with 100 layers: without offload even depth = num_layers may not fit;
  // with CPU-offloaded optimizer state it does (§7.1.1).
  const TransformerSpec spec = Gpt2_200B();
  const OpGraph graph = BuildTransformerOpGraph(spec);
  const auto sections = IdentifyCutPoints(graph, spec.num_layers);
  ASSERT_TRUE(sections.ok());
  const auto with_offload = MinFittingDepth(ScheduleKind::kVaruna, spec, sections.value(), 1,
                                            512, V100Budget(), /*cpu_offload_optimizer=*/true);
  ASSERT_TRUE(with_offload.ok());
  EXPECT_LE(with_offload.value(), 100);
  const auto without = MinFittingDepth(ScheduleKind::kVaruna, spec, sections.value(), 1, 512,
                                       V100Budget(), /*cpu_offload_optimizer=*/false);
  if (without.ok()) {
    EXPECT_GE(without.value(), with_offload.value());
  }
}

}  // namespace
}  // namespace varuna
