#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/model/cutpoints.h"
#include "src/model/op_graph.h"
#include "src/model/tracer.h"
#include "src/model/transformer.h"

namespace varuna {
namespace {

TEST(TransformerSpecTest, ParameterCountsMatchPaper) {
  // Named sizes should land near their labels.
  EXPECT_NEAR(BertLarge().TotalParams() / 1e6, 340, 40);
  EXPECT_NEAR(Gpt2Medium().TotalParams() / 1e6, 355, 55);
  EXPECT_NEAR(Gpt2_2_5B().TotalParams() / 1e9, 2.5, 0.3);
  EXPECT_NEAR(Gpt2_8_3B().TotalParams() / 1e9, 8.3, 0.4);
  EXPECT_NEAR(Gpt2_20B().TotalParams() / 1e9, 20.0, 1.0);
  EXPECT_NEAR(Gpt2_200B().TotalParams() / 1e9, 200.0, 5.0);
}

TEST(TransformerSpecTest, BoundaryActivationMatchesPaperQuote) {
  // §3.1: for 2.5B GPT-2 the per-example input activation is ~3.75 MB.
  EXPECT_NEAR(Gpt2_2_5B().BoundaryActivationBytes() / kMiB, 3.75, 0.01);
}

TEST(TransformerSpecTest, IntraLayerTransferMatchesPaperQuote) {
  // §3.1: GPT-2 2.5B, 54 layers, 6 allreduces/layer, each moving
  // 2 * hidden * seq fp16 values -> ~2.4 GB per example per GPU.
  const TransformerSpec spec = Gpt2_2_5B();
  const double total = spec.num_layers * 6.0 * spec.IntraLayerAllReduceBytes();
  EXPECT_NEAR(total / 1e9, 2.4, 0.2);
}

TEST(OpGraphTest, TotalsMatchSpec) {
  const TransformerSpec spec = Gpt2_2_5B();
  const OpGraph graph = BuildTransformerOpGraph(spec);
  EXPECT_NEAR(graph.TotalParams() / spec.TotalParams(), 1.0, 0.01);
  EXPECT_NEAR(graph.TotalFwdFlops() / spec.TotalFwdFlops(), 1.0, 0.01);
  EXPECT_EQ(graph.size(), 1 + 5 * spec.num_layers + 2);
}

TEST(OpGraphTest, BlockBoundaryHasSmallestActivation) {
  const OpGraph graph = BuildTransformerOpGraph(Gpt2_2_5B());
  // Within block 0 (ops 1..5), mlp_out (op 5) has the smallest output.
  double boundary = graph.op(5).out_activation_bytes;
  for (int i = 1; i < 5; ++i) {
    EXPECT_GT(graph.op(i).out_activation_bytes, boundary);
  }
}

TEST(CutPointsTest, SectionsBalancedOnHomogeneousModel) {
  const TransformerSpec spec = Gpt2_8_3B();  // 72 layers.
  const OpGraph graph = BuildTransformerOpGraph(spec);
  const auto sections = IdentifyCutPoints(graph, spec.num_layers);
  ASSERT_TRUE(sections.ok());
  const ModelSections& s = sections.value();
  EXPECT_EQ(s.num_sections(), 72);
  double min_flops = s.fwd_flops[1];
  double max_flops = s.fwd_flops[1];
  for (int i = 1; i + 1 < s.num_sections(); ++i) {  // Interior sections.
    min_flops = std::min(min_flops, s.fwd_flops[static_cast<size_t>(i)]);
    max_flops = std::max(max_flops, s.fwd_flops[static_cast<size_t>(i)]);
  }
  EXPECT_LT(max_flops / min_flops, 1.25);
}

TEST(CutPointsTest, BoundariesLandOnBlockBoundaries) {
  const TransformerSpec spec = Gpt2_2_5B();
  const OpGraph graph = BuildTransformerOpGraph(spec);
  const auto sections = IdentifyCutPoints(graph, spec.num_layers);
  ASSERT_TRUE(sections.ok());
  // Every interior boundary op should be an mlp_out (lowest activation).
  const ModelSections& s = sections.value();
  for (size_t i = 1; i + 1 < s.boundaries.size(); ++i) {
    const std::string& name = graph.op(s.boundaries[i] - 1).name;
    EXPECT_NE(name.find("mlp_out"), std::string::npos) << name;
  }
}

TEST(CutPointsTest, RejectsTooManySections) {
  const OpGraph graph = BuildTransformerOpGraph(Gpt2Medium());
  EXPECT_FALSE(IdentifyCutPoints(graph, graph.size() + 1).ok());
  EXPECT_FALSE(IdentifyCutPoints(graph, 0).ok());
}

TEST(PartitionTest, BalancedStages) {
  const TransformerSpec spec = Gpt2_8_3B();
  const OpGraph graph = BuildTransformerOpGraph(spec);
  const auto sections = IdentifyCutPoints(graph, spec.num_layers);
  ASSERT_TRUE(sections.ok());
  const auto partition = PartitionModel(sections.value(), 18);
  ASSERT_TRUE(partition.ok());
  const Partition& p = partition.value();
  EXPECT_EQ(p.depth(), 18);
  // 72 layers over 18 stages: interior stages hold 4 blocks each.
  double total_params = 0.0;
  for (int stage = 0; stage < p.depth(); ++stage) {
    total_params += p.stage_params[static_cast<size_t>(stage)];
  }
  EXPECT_NEAR(total_params / spec.TotalParams(), 1.0, 0.01);
  // Interior stage compute balanced within 30%.
  for (int stage = 1; stage + 1 < p.depth(); ++stage) {
    EXPECT_NEAR(p.stage_fwd_flops[static_cast<size_t>(stage)] /
                    p.stage_fwd_flops[1],
                1.0, 0.3);
  }
}

TEST(PartitionTest, SendsBoundaryActivations) {
  const TransformerSpec spec = Gpt2_2_5B();
  const OpGraph graph = BuildTransformerOpGraph(spec);
  const auto sections = IdentifyCutPoints(graph, spec.num_layers);
  ASSERT_TRUE(sections.ok());
  const auto partition = PartitionModel(sections.value(), 9);
  ASSERT_TRUE(partition.ok());
  for (const double bytes : partition.value().send_activation_bytes) {
    EXPECT_NEAR(bytes, spec.BoundaryActivationBytes(), 1.0);
  }
}

TEST(PartitionTest, DepthOneAndFullDepth) {
  const OpGraph graph = BuildTransformerOpGraph(Gpt2Medium());
  const auto sections = IdentifyCutPoints(graph, 24);
  ASSERT_TRUE(sections.ok());
  EXPECT_TRUE(PartitionModel(sections.value(), 1).ok());
  EXPECT_TRUE(PartitionModel(sections.value(), 24).ok());
  EXPECT_FALSE(PartitionModel(sections.value(), 25).ok());
}

TEST(PartitionTest, LastStageWeightPacksHeadIntoFinalStage) {
  // With the last-stage discount, the final stage can afford more compute.
  const TransformerSpec spec = Gpt2_2_5B();
  const OpGraph graph = BuildTransformerOpGraph(spec);
  const auto sections = IdentifyCutPoints(graph, spec.num_layers);
  ASSERT_TRUE(sections.ok());
  PartitionOptions discounted;
  discounted.last_stage_weight = 0.75;
  PartitionOptions uniform;
  uniform.last_stage_weight = 1.0;
  const auto with_discount = PartitionModel(sections.value(), 9, discounted);
  const auto without = PartitionModel(sections.value(), 9, uniform);
  ASSERT_TRUE(with_discount.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_GE(with_discount.value().stage_fwd_flops.back(),
            without.value().stage_fwd_flops.back());
}

TEST(TracerTest, FindsTiedEmbedding) {
  const TransformerSpec spec = Gpt2_2_5B();
  const OpGraph graph = BuildTransformerOpGraph(spec);
  const auto sections = IdentifyCutPoints(graph, spec.num_layers);
  ASSERT_TRUE(sections.ok());
  TraceOptions options;
  options.mixed_precision_loss_scaler = false;
  const TraceReport report = TraceCrossPartitionState(graph, sections.value(), options);
  ASSERT_EQ(report.shared.size(), 1u);
  EXPECT_EQ(report.shared[0].kind, SharedTensor::Kind::kTiedParameter);
  EXPECT_EQ(report.shared[0].sections.front(), 0);
  EXPECT_EQ(report.shared[0].sections.back(), sections.value().num_sections() - 1);
  // fp32 gradient of the embedding table.
  EXPECT_NEAR(report.shared[0].sync_bytes, 4.0 * spec.EmbeddingParams(), 1.0);
}

TEST(TracerTest, NoTiedEmbeddingWhenUntied) {
  TransformerSpec spec = Gpt2Medium();
  spec.tied_embeddings = false;
  const OpGraph graph = BuildTransformerOpGraph(spec);
  const auto sections = IdentifyCutPoints(graph, spec.num_layers);
  ASSERT_TRUE(sections.ok());
  TraceOptions options;
  options.mixed_precision_loss_scaler = false;
  const TraceReport report = TraceCrossPartitionState(graph, sections.value(), options);
  EXPECT_TRUE(report.shared.empty());
}

TEST(TracerTest, FlagsLibraryGlobals) {
  const TransformerSpec spec = Gpt2Medium();
  const OpGraph graph = BuildTransformerOpGraph(spec);
  const auto sections = IdentifyCutPoints(graph, spec.num_layers);
  ASSERT_TRUE(sections.ok());
  TraceOptions options;
  options.mixed_precision_loss_scaler = true;
  options.global_norm_optimizer = true;
  const TraceReport report = TraceCrossPartitionState(graph, sections.value(), options);
  int library_globals = 0;
  for (const auto& tensor : report.shared) {
    if (tensor.kind == SharedTensor::Kind::kLibraryGlobal) {
      ++library_globals;
      EXPECT_EQ(static_cast<int>(tensor.sections.size()), sections.value().num_sections());
    }
  }
  EXPECT_EQ(library_globals, 2);
}

TEST(TracerTest, SingleSectionHasNoTiedSharing) {
  const TransformerSpec spec = Gpt2Medium();
  const OpGraph graph = BuildTransformerOpGraph(spec);
  const auto sections = IdentifyCutPoints(graph, 1);
  ASSERT_TRUE(sections.ok());
  TraceOptions options;
  options.mixed_precision_loss_scaler = false;
  EXPECT_TRUE(TraceCrossPartitionState(graph, sections.value(), options).shared.empty());
}

}  // namespace
}  // namespace varuna
