#include <gtest/gtest.h>

#include <cmath>

#include "src/cluster/cluster.h"
#include "src/cluster/placement.h"
#include "src/cluster/vm.h"
#include "src/common/rng.h"
#include "src/model/op_graph.h"
#include "src/morph/calibration.h"
#include "src/morph/config_search.h"
#include "src/morph/fast_sim.h"
#include "src/pipeline/executor.h"
#include "src/pipeline/stage_timing.h"

namespace varuna {
namespace {

struct Fixture {
  TransformerSpec spec;
  OpGraph graph;
  ModelSections sections;
  Cluster cluster;
  Calibration calibration;

  explicit Fixture(TransformerSpec model_spec, int vms = 16,
                   const VmType& vm = Nc6V3())
      : spec(std::move(model_spec)),
        graph(BuildTransformerOpGraph(spec)),
        sections(IdentifyCutPoints(graph, spec.num_layers).value()),
        cluster(CommodityFabric()) {
    cluster.AddVms(vm, vms);
    Rng rng(99);
    calibration = Calibrate(sections, cluster, CalibrationOptions(), &rng).value();
  }
};

TEST(CalibrationTest, MeasuresAllSections) {
  Fixture fx(Gpt2_2_5B());
  EXPECT_EQ(static_cast<int>(fx.calibration.sections.size()), 54);
  for (const auto& section : fx.calibration.sections) {
    EXPECT_GT(section.forward_s.at(4), 0.0);
    EXPECT_GT(section.backward_s.at(4), section.forward_s.at(4));
    EXPECT_GT(section.send_inter_s.at(4), 0.0);
  }
}

TEST(CalibrationTest, CloseToGroundTruthCompute) {
  Fixture fx(Gpt2_2_5B());
  const GpuSpec gpu = Nc6V3().gpu;
  for (const int m : {1, 4, 16}) {
    const double truth = gpu.ComputeTime(fx.sections.fwd_flops[1] * m);
    EXPECT_NEAR(fx.calibration.ForwardTime(1, m) / truth, 1.0, 0.03) << "m=" << m;
  }
}

TEST(CalibrationTest, InterpolatesUnprofiledSizes) {
  Fixture fx(Gpt2_2_5B());
  const double t2 = fx.calibration.ForwardTime(1, 2);
  const double t3 = fx.calibration.ForwardTime(1, 3);
  const double t4 = fx.calibration.ForwardTime(1, 4);
  EXPECT_GT(t3, t2);
  EXPECT_LT(t3, t4);
}

TEST(CalibrationTest, AllReduceModelExtrapolatesRingSizes) {
  Fixture fx(Gpt2_2_5B());
  const double bytes = 2.0 * fx.calibration.sections[1].params;
  const double d2 = fx.calibration.allreduce.Predict(bytes, 2);
  const double d8 = fx.calibration.allreduce.Predict(bytes, 8);
  // Ring model: time grows with D but stays under the 2S/bw asymptote + latency.
  EXPECT_GT(d8, d2);
  const double truth = fx.cluster.network().MeanAllReduceTime(
      {0, 1, 2, 3, 4, 5, 6, 7}, bytes, 1);
  EXPECT_NEAR(d8 / truth, 1.0, 0.35);  // Fitted with k-concurrent contention.
}

TEST(CalibrationTest, FailsOnTinyCluster) {
  TransformerSpec spec = Gpt2Medium();
  const OpGraph graph = BuildTransformerOpGraph(spec);
  const ModelSections sections = IdentifyCutPoints(graph, spec.num_layers).value();
  Cluster cluster(CommodityFabric());
  cluster.AddVms(Nc6V3(), 2);
  Rng rng(1);
  EXPECT_FALSE(Calibrate(sections, cluster, CalibrationOptions(), &rng).ok());
}

// The Table 7 property: fast-simulator estimates within ~5% of the testbed.
class SimulatorAccuracyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // (P, D)

TEST_P(SimulatorAccuracyTest, EstimateWithinFivePercent) {
  const int depth = std::get<0>(GetParam());
  const int replicas = std::get<1>(GetParam());
  Fixture fx(Gpt2_2_5B(), depth * replicas + 2);
  const int m = 4;
  const int num_microbatches =
      static_cast<int>(std::ceil(2400.0 / (m * replicas)));
  const Partition partition = PartitionModel(fx.sections, depth).value();
  const Schedule schedule =
      GenerateSchedule(ScheduleKind::kVaruna, depth, num_microbatches);

  // Estimate (Varuna's product simulator).
  FastSimulator simulator(&fx.calibration);
  FastSimConfig sim_config;
  sim_config.sections = &fx.sections;
  sim_config.partition = &partition;
  sim_config.data_parallel = replicas;
  sim_config.microbatch_size = m;
  sim_config.gpus_per_node = 1;
  const double estimated = simulator.EstimateMinibatch(schedule, sim_config).minibatch_s;

  // "Actual": the noisy DES testbed, averaged over a few mini-batches.
  const Placement placement = PlaceJob(fx.cluster, depth, replicas).value();
  const auto timings = ComputeStageTimings(fx.sections, partition, Nc6V3().gpu, m);
  Rng rng(7);
  PipelineExecutor executor(&fx.cluster, &rng);
  double actual = 0.0;
  const int runs = 8;  // The testbed is noisy; average like the paper's runs.
  for (int run = 0; run < runs; ++run) {
    actual += executor.Run(schedule, placement, timings, m).total_time_s;
  }
  actual /= runs;

  EXPECT_NEAR(estimated / actual, 1.0, 0.05)
      << "P=" << depth << " D=" << replicas << " est=" << estimated << " act=" << actual;
}

INSTANTIATE_TEST_SUITE_P(Configs, SimulatorAccuracyTest,
                         ::testing::Values(std::make_tuple(6, 2), std::make_tuple(9, 2),
                                           std::make_tuple(9, 4), std::make_tuple(18, 2),
                                           std::make_tuple(27, 1)),
                         [](const auto& param_info) {
                           return "P" + std::to_string(std::get<0>(param_info.param)) + "xD" +
                                  std::to_string(std::get<1>(param_info.param));
                         });

TEST(CalibrationTest, StallDecompositionConsistent) {
  // Detected tail stalls split into detection offset + exponential scale;
  // the parts must re-assemble into the conditional mean.
  Fixture fx(Gpt2_2_5B());
  const Calibration& calib = fx.calibration;
  ASSERT_GT(calib.send_stall_probability, 0.0);
  EXPECT_GT(calib.send_stall_scale_s, 0.0);
  EXPECT_NEAR(calib.send_stall_offset_s + calib.send_stall_scale_s, calib.send_stall_mean_s,
              1e-9);
  // The profiled tail should resemble the fabric's ground truth: probability
  // below the injected 2% (threshold misses small stalls), conditional scale
  // near the injected 250 ms exponential.
  EXPECT_LT(calib.send_stall_probability, 0.022);
  EXPECT_GT(calib.send_stall_probability, 0.005);
  EXPECT_NEAR(calib.send_stall_scale_s, 0.25, 0.12);
}

TEST(ConfigSearchTest, PicksSaturatingMicrobatch) {
  Fixture fx(Gpt2_2_5B());
  ConfigSearch search(&fx.spec, &fx.sections, &fx.calibration);
  const int m = search.PickMicrobatchSize(0.05);
  EXPECT_GE(m, 2);
  EXPECT_LE(m, 16);
}

TEST(ConfigSearchTest, RespectsMemoryFloor) {
  // 8.3B cannot run at shallow depth on 16 GB GPUs.
  Fixture fx(Gpt2_8_3B(), 40);
  ConfigSearch search(&fx.spec, &fx.sections, &fx.calibration);
  SearchConstraints constraints;
  constraints.total_batch = 512;
  constraints.budget.gpu_memory_bytes = Nc6V3().gpu.memory_bytes;
  const auto sweep = search.Sweep(36, constraints);
  ASSERT_TRUE(sweep.ok());
  for (const JobConfig& config : sweep.value()) {
    EXPECT_GE(config.pipeline_depth, 10);
    EXPECT_LE(config.gpus_used, 36);
  }
}

TEST(ConfigSearchTest, KeepsTotalBatchFixed) {
  Fixture fx(Gpt2_2_5B(), 40);
  ConfigSearch search(&fx.spec, &fx.sections, &fx.calibration);
  SearchConstraints constraints;
  constraints.total_batch = 2400;
  constraints.budget.gpu_memory_bytes = Nc6V3().gpu.memory_bytes;
  const auto sweep = search.Sweep(36, constraints);
  ASSERT_TRUE(sweep.ok());
  for (const JobConfig& config : sweep.value()) {
    EXPECT_GE(config.ActualBatch(), 2400.0);
    EXPECT_LE(config.ActualBatch(), 2400.0 * 1.1);  // Ceil rounding only.
  }
}

TEST(ConfigSearchTest, DeepPipelineWinsAtScale) {
  // Observation 2 / Table 3: with many GPUs, a deeper pipeline (smaller D)
  // can beat the shallowest feasible pipeline because the data-parallel
  // allreduce bandwidth scales as 2N/P.
  Fixture fx(Gpt2_2_5B(), 104);
  ConfigSearch search(&fx.spec, &fx.sections, &fx.calibration);
  SearchConstraints constraints;
  constraints.total_batch = 8192;
  constraints.budget.gpu_memory_bytes = Nc6V3().gpu.memory_bytes;
  const auto best100 = search.Best(100, constraints);
  ASSERT_TRUE(best100.ok());
  const auto sweep = search.Sweep(100, constraints);
  ASSERT_TRUE(sweep.ok());
  int min_depth = 1000;
  for (const JobConfig& config : sweep.value()) {
    min_depth = std::min(min_depth, config.pipeline_depth);
  }
  EXPECT_GT(best100.value().pipeline_depth, min_depth);
}

TEST(ConfigSearchTest, ErrorsWhenNothingFits) {
  Fixture fx(Gpt2_8_3B(), 16);
  ConfigSearch search(&fx.spec, &fx.sections, &fx.calibration);
  SearchConstraints constraints;
  constraints.total_batch = 512;
  constraints.budget.gpu_memory_bytes = Nc6V3().gpu.memory_bytes;
  EXPECT_FALSE(search.Best(4, constraints).ok());
}

}  // namespace
}  // namespace varuna
