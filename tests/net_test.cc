#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "src/cluster/vm.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/net/network.h"
#include "src/net/topology.h"

namespace varuna {
namespace {

Topology TwoNodeTopology(int gpus_per_node) {
  FabricSpec fabric;
  fabric.per_flow_bandwidth_bps = GbpsToBytesPerSec(5.0);
  fabric.base_latency_s = 300e-6;
  Topology topology(fabric);
  NodeSpec node;
  node.num_gpus = gpus_per_node;
  node.intra_bandwidth_bps = GbpsToBytesPerSec(96.0);
  node.intra_latency_s = 10e-6;
  node.nic_bandwidth_bps = GbpsToBytesPerSec(10.0);
  topology.AddNode(node);
  topology.AddNode(node);
  return topology;
}

TEST(TopologyTest, GpuToNodeMapping) {
  Topology topology = TwoNodeTopology(4);
  EXPECT_EQ(topology.num_nodes(), 2);
  EXPECT_EQ(topology.num_gpus(), 8);
  EXPECT_EQ(topology.NodeOf(0), 0);
  EXPECT_EQ(topology.NodeOf(3), 0);
  EXPECT_EQ(topology.NodeOf(4), 1);
  EXPECT_TRUE(topology.SameNode(0, 3));
  EXPECT_FALSE(topology.SameNode(3, 4));
  EXPECT_EQ(topology.GpusOfNode(1), (std::vector<GpuId>{4, 5, 6, 7}));
}

TEST(NetworkTest, IntraNodeUsesFastLink) {
  Topology topology = TwoNodeTopology(4);
  Network network(&topology);
  const double intra = network.MeanTransferTime(0, 1, 1e9, 1);
  const double inter = network.MeanTransferTime(0, 4, 1e9, 1);
  EXPECT_LT(intra, inter);
  // 1 GB over 12 GB/s PCIe ~= 83 ms.
  EXPECT_NEAR(intra, 1e9 / GbpsToBytesPerSec(96.0) + 10e-6, 1e-3);
  // Cross-node is capped by the 5 Gbps fabric, not the 10 Gbps NIC.
  EXPECT_NEAR(inter, 1e9 / GbpsToBytesPerSec(5.0) + 300e-6, 1e-2);
}

TEST(NetworkTest, ConcurrentFlowsShareNic) {
  Topology topology = TwoNodeTopology(4);
  Network network(&topology);
  // With 4 flows the NIC share (10/4 = 2.5 Gbps) is below the fabric cap.
  const double shared = network.FlowBandwidth(0, 4, 4);
  EXPECT_NEAR(shared, GbpsToBytesPerSec(2.5), 1.0);
  EXPECT_LT(shared, network.FlowBandwidth(0, 4, 1));
}

TEST(NetworkTest, SelfTransferIsFree) {
  Topology topology = TwoNodeTopology(4);
  Network network(&topology);
  EXPECT_DOUBLE_EQ(network.MeanTransferTime(2, 2, 1e9, 1), 0.0);
}

TEST(NetworkTest, JitterSamplesCenterOnBaseLatency) {
  Topology topology(CommodityFabric());
  NodeSpec node = Nc6V3().node;
  topology.AddNode(node);
  topology.AddNode(node);
  Network network(&topology);
  Rng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) {
    samples.push_back(network.SampleTransferTime(0, 1, 0.0, 1, &rng));
  }
  // Median of log-normal jitter is the base latency; tail stalls push p99 up.
  EXPECT_NEAR(Percentile(samples, 0.5), CommodityFabric().base_latency_s, 50e-6);
  EXPECT_GT(Percentile(samples, 0.995), 2.0 * CommodityFabric().base_latency_s);
}

TEST(NetworkTest, AllReduceSingleMemberIsFree) {
  Topology topology = TwoNodeTopology(1);
  Network network(&topology);
  EXPECT_DOUBLE_EQ(network.MeanAllReduceTime({0}, 1e9, 1), 0.0);
}

TEST(NetworkTest, AllReduceScalesWithRingSteps) {
  // Ring allreduce: 2(D-1) steps of S/D bytes -> total ~ 2S(D-1)/D / bw.
  FabricSpec fabric;
  fabric.per_flow_bandwidth_bps = 1e9;
  fabric.base_latency_s = 0.0;
  Topology topology(fabric);
  NodeSpec node;
  node.num_gpus = 1;
  node.intra_bandwidth_bps = 1e12;
  node.nic_bandwidth_bps = 1e9;
  for (int i = 0; i < 8; ++i) {
    topology.AddNode(node);
  }
  Network network(&topology);
  const double bytes = 8e9;
  const double d4 = network.MeanAllReduceTime({0, 1, 2, 3}, bytes, 1);
  const double d8 = network.MeanAllReduceTime({0, 1, 2, 3, 4, 5, 6, 7}, bytes, 1);
  EXPECT_NEAR(d4, 2.0 * 3.0 * (bytes / 4.0 / 1e9), 1e-6);
  EXPECT_NEAR(d8, 2.0 * 7.0 * (bytes / 8.0 / 1e9), 1e-6);
  // Asymptotically bandwidth-optimal: time approaches 2S/bw from below.
  EXPECT_LT(d4, 2.0 * bytes / 1e9);
  EXPECT_LT(d8, 2.0 * bytes / 1e9);
  EXPECT_GT(d8, d4);
}

TEST(NetworkTest, AllReduceSlowestHopDominates) {
  Topology topology = TwoNodeTopology(4);
  Network network(&topology);
  // Ring within one node vs ring spanning nodes.
  const double intra_ring = network.MeanAllReduceTime({0, 1, 2, 3}, 1e9, 1);
  const double inter_ring = network.MeanAllReduceTime({0, 1, 4, 5}, 1e9, 1);
  EXPECT_LT(intra_ring, inter_ring);
}

TEST(NetworkTest, RingTailAmplifiesWithSize) {
  // Observation 2's mechanism: every ring step waits on the slowest of D
  // concurrent hops, so the per-step latency share of the total grows with D
  // on a stall-prone fabric.
  Topology topology(CommodityFabric());
  NodeSpec node = Nc6V3().node;
  for (int i = 0; i < 32; ++i) {
    topology.AddNode(node);
  }
  Network network(&topology);
  auto per_step_latency = [&](int d) {
    std::vector<GpuId> ring;
    for (int i = 0; i < d; ++i) {
      ring.push_back(i);
    }
    const double bytes = 1e6;  // Small payload: latency-dominated.
    return network.MeanAllReduceTime(ring, bytes, 1) / (2.0 * (d - 1));
  };
  EXPECT_GT(per_step_latency(16), 2.0 * per_step_latency(2));
  EXPECT_GT(per_step_latency(32), per_step_latency(16));
}

TEST(NetworkTest, SampledAllReduceNearMean) {
  Topology topology(CommodityFabric());
  NodeSpec node = Nc6V3().node;
  for (int i = 0; i < 8; ++i) {
    topology.AddNode(node);
  }
  Network network(&topology);
  std::vector<GpuId> ring = {0, 1, 2, 3, 4, 5, 6, 7};
  const double bytes = 500e6;
  const double mean = network.MeanAllReduceTime(ring, bytes, 1);
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 300; ++i) {
    stats.Add(network.SampleAllReduceTime(ring, bytes, 1, &rng));
  }
  EXPECT_NEAR(stats.mean() / mean, 1.0, 0.15);
}

TEST(NetworkTest, IntraNodeRingHasNoTail) {
  // NVLink rings inside a DGX-2 see no fabric stalls.
  Topology topology(CommodityFabric());
  topology.AddNode(Dgx2().node);
  Network network(&topology);
  std::vector<GpuId> ring = {0, 1, 2, 3};
  Rng rng(5);
  const double a = network.SampleAllReduceTime(ring, 100e6, 1, &rng);
  const double b = network.SampleAllReduceTime(ring, 100e6, 1, &rng);
  EXPECT_DOUBLE_EQ(a, b);  // Deterministic: no jitter on NVLink hops.
}

TEST(NetworkTest, SlowestHopIgnoresUnusedIntraLink) {
  // Regression: SlowestHop used to seed its running minimum from members[0]'s
  // intra-node link parameters. On a ring whose hops are ALL cross-node, an
  // intra link slower than the fabric share would win the min and the ring
  // would be costed as intra-node (no jitter amplification, wrong bandwidth)
  // even though no intra hop exists. Two topologies differing only in the
  // (unused) intra link speed must now price the ring identically.
  FabricSpec fabric;
  fabric.per_flow_bandwidth_bps = GbpsToBytesPerSec(5.0);
  fabric.base_latency_s = 300e-6;
  const auto one_gpu_nodes = [&](double intra_gbps) {
    Topology topology(fabric);
    NodeSpec node;
    node.num_gpus = 1;
    node.intra_bandwidth_bps = GbpsToBytesPerSec(intra_gbps);
    node.intra_latency_s = 10e-6;
    node.nic_bandwidth_bps = GbpsToBytesPerSec(10.0);
    topology.AddNode(node);
    topology.AddNode(node);
    return topology;
  };
  // Pathological: intra (1 Gbps) is slower than the cross-node fabric share
  // (5 Gbps) — the configuration that tripped the old seeding.
  Topology slow_intra = one_gpu_nodes(1.0);
  Topology fast_intra = one_gpu_nodes(96.0);
  Network slow_net(&slow_intra);
  Network fast_net(&fast_intra);
  const double bytes = 1e9;
  const double slow_time = slow_net.MeanAllReduceTime({0, 1}, bytes, 1);
  const double fast_time = fast_net.MeanAllReduceTime({0, 1}, bytes, 1);
  EXPECT_DOUBLE_EQ(slow_time, fast_time);
  // The true bottleneck is the 5 Gbps fabric: 2(D-1) steps of bytes/D each,
  // plus the cross-node per-step latency.
  EXPECT_NEAR(slow_time, 2.0 * (bytes / 2.0 / GbpsToBytesPerSec(5.0) + 300e-6), 1e-6);
  // And emphatically NOT the 1 Gbps intra seed the old code reported.
  EXPECT_LT(slow_time, 2.0 * (bytes / 2.0) / GbpsToBytesPerSec(1.0));
}

TEST(NetworkTest, DegenerateSingleGpuRingUsesIntraLink) {
  // A ring where every member is the same GPU has no real hop; it falls back
  // to the member's intra-node parameters (the only defensible default).
  Topology topology = TwoNodeTopology(4);
  Network network(&topology);
  const double bytes = 1e9;
  const double time = network.MeanAllReduceTime({2, 2}, bytes, 1);
  EXPECT_NEAR(time, 2.0 * (bytes / 2.0 / GbpsToBytesPerSec(96.0) + 10e-6), 1e-9);
}

TEST(NetworkTest, LargeRingSamplingConsumesNoRngDraws) {
  // Pin the documented contract: SampleAllReduceTime on rings with more than
  // 64 members falls back to the analytic mean and consumes ZERO draws.
  Topology topology(CommodityFabric());
  NodeSpec node;
  node.num_gpus = 1;
  node.intra_bandwidth_bps = GbpsToBytesPerSec(96.0);
  node.intra_latency_s = 10e-6;
  node.nic_bandwidth_bps = GbpsToBytesPerSec(10.0);
  for (int i = 0; i < 65; ++i) {
    topology.AddNode(node);
  }
  Network network(&topology);
  std::vector<GpuId> ring;
  for (int i = 0; i < 65; ++i) {
    ring.push_back(i);
  }
  const double bytes = 500e6;
  Rng sampled(7);
  Rng untouched(7);
  const double time = network.SampleAllReduceTime(ring, bytes, 1, &sampled);
  EXPECT_DOUBLE_EQ(time, network.MeanAllReduceTime(ring, bytes, 1));
  // Both rngs must still be at the same position in the stream.
  EXPECT_EQ(sampled.NextUint64(), untouched.NextUint64());

  // Straddle the threshold: at exactly 64 members the explicit per-step max
  // IS sampled, so the stream advances.
  ring.pop_back();
  Rng sampled64(7);
  Rng untouched64(7);
  (void)network.SampleAllReduceTime(ring, bytes, 1, &sampled64);
  EXPECT_NE(sampled64.NextUint64(), untouched64.NextUint64());
}

TEST(NetworkTest, RingCostMemoCountsHitsAndStaysConsistent) {
  Topology topology = TwoNodeTopology(4);
  Network network(&topology);
  const double bytes = 1e9;
  const std::vector<GpuId> ring = {0, 1, 4, 5};
  EXPECT_EQ(network.ring_cache_hits(), 0u);
  EXPECT_EQ(network.ring_cache_misses(), 0u);
  const double first = network.MeanAllReduceTime(ring, bytes, 1);
  EXPECT_EQ(network.ring_cache_misses(), 1u);
  const double second = network.MeanAllReduceTime(ring, bytes, 1);
  EXPECT_EQ(network.ring_cache_hits(), 1u);
  EXPECT_DOUBLE_EQ(first, second);
  // The key includes concurrent_rings: a different ring count is a miss, and
  // the shared-NIC price differs.
  const double shared = network.MeanAllReduceTime(ring, bytes, 4);
  EXPECT_EQ(network.ring_cache_misses(), 2u);
  EXPECT_GT(shared, first);
  // The key is the canonical ring *shape*: this reordering changes the hop
  // multiset (2 intra + 2 cross -> 4 cross), so it is a genuinely different
  // ring and a distinct entry even over the same GPUs.
  const std::vector<GpuId> reordered = {0, 4, 1, 5};
  (void)network.MeanAllReduceTime(reordered, bytes, 1);
  EXPECT_EQ(network.ring_cache_misses(), 3u);
  // Memoized values match a fresh (cold-cache) Network exactly.
  Network cold(&topology);
  EXPECT_DOUBLE_EQ(network.MeanAllReduceTime(ring, bytes, 1),
                   cold.MeanAllReduceTime(ring, bytes, 1));
  EXPECT_DOUBLE_EQ(network.MeanAllReduceTime(reordered, bytes, 1),
                   cold.MeanAllReduceTime(reordered, bytes, 1));
}

TEST(NetworkTest, RingShapeMemoHitsOnEquivalentRings) {
  // The memo keys on ring shape, not member sequence: rotations, reversals,
  // and substitutions of same-link-class GPUs are one entry. This is what
  // lets morphed rings (same pattern, shuffled membership) re-hit.
  Topology topology = TwoNodeTopology(4);
  Network network(&topology);
  const double bytes = 1e9;
  const double base = network.MeanAllReduceTime({0, 1, 4, 5}, bytes, 1);
  EXPECT_EQ(network.ring_cache_misses(), 1u);
  EXPECT_EQ(network.ring_cache_hits(), 0u);
  const std::vector<std::vector<GpuId>> equivalent = {
      {1, 4, 5, 0},  // rotation
      {5, 4, 1, 0},  // reversal
      {2, 3, 6, 7},  // same-class GPU substitution
      {6, 7, 2, 3},  // substitution across the node boundary (classes match)
  };
  for (const auto& ring : equivalent) {
    EXPECT_DOUBLE_EQ(network.MeanAllReduceTime(ring, bytes, 1), base);
  }
  EXPECT_EQ(network.ring_cache_misses(), 1u);
  EXPECT_EQ(network.ring_cache_hits(), equivalent.size());
}

TEST(NetworkTest, ShapeEquivalentRingsPriceBitIdenticallyColdCache) {
  // Property: for seeded random rings, any rotation/reversal must produce
  // bit-identical RingCosts even on a COLD cache (i.e. the shape computation
  // itself is walk-order canonical, not just the memo lookup).
  Topology topology(CommodityFabric());
  NodeSpec small = Nc6V3().node;
  NodeSpec big = Nc24V3().node;
  for (int i = 0; i < 4; ++i) {
    topology.AddNode(i % 2 == 0 ? small : big);
  }
  Rng rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    const int d = 2 + static_cast<int>(rng.NextUint64() % 7);
    std::vector<GpuId> ring;
    for (int i = 0; i < d; ++i) {
      ring.push_back(static_cast<GpuId>(rng.NextUint64() %
                                        static_cast<uint64_t>(topology.num_gpus())));
    }
    std::vector<GpuId> rotated = ring;
    const size_t shift = rng.NextUint64() % ring.size();
    std::rotate(rotated.begin(), rotated.begin() + static_cast<long>(shift), rotated.end());
    if (rng.NextUint64() % 2 == 0) {
      std::reverse(rotated.begin(), rotated.end());
    }
    const int rings = 1 + static_cast<int>(rng.NextUint64() % 3);
    const double bytes = 1e8;
    Network cold_a(&topology);
    Network cold_b(&topology);
    ASSERT_DOUBLE_EQ(cold_a.MeanAllReduceTime(ring, bytes, rings),
                     cold_b.MeanAllReduceTime(rotated, bytes, rings))
        << "trial " << trial;
    // And the warm path agrees: the rotated ring hits the original's entry.
    const uint64_t hits_before = cold_a.ring_cache_hits();
    ASSERT_DOUBLE_EQ(cold_a.MeanAllReduceTime(rotated, bytes, rings),
                     cold_a.MeanAllReduceTime(ring, bytes, rings))
        << "trial " << trial;
    ASSERT_EQ(cold_a.ring_cache_hits(), hits_before + 2) << "trial " << trial;
  }
}

TEST(TopologyTest, LinkClassesDedupeOnLinkFields) {
  FabricSpec fabric;
  fabric.per_flow_bandwidth_bps = GbpsToBytesPerSec(5.0);
  Topology topology(fabric);
  NodeSpec a;
  a.num_gpus = 4;
  a.intra_bandwidth_bps = GbpsToBytesPerSec(96.0);
  a.intra_latency_s = 10e-6;
  a.nic_bandwidth_bps = GbpsToBytesPerSec(10.0);
  NodeSpec b = a;
  b.nic_bandwidth_bps = GbpsToBytesPerSec(40.0);
  // Same link fields but a different GPU count must still share the class.
  NodeSpec a_fat = a;
  a_fat.num_gpus = 8;
  topology.AddNode(a);
  topology.AddNode(b);
  topology.AddNode(a_fat);
  topology.AddNode(b);
  EXPECT_EQ(topology.num_link_classes(), 2);
  EXPECT_EQ(topology.LinkClassOf(0), 0);
  EXPECT_EQ(topology.LinkClassOf(1), 1);
  EXPECT_EQ(topology.LinkClassOf(2), 0);
  EXPECT_EQ(topology.LinkClassOf(3), 1);
  EXPECT_DOUBLE_EQ(topology.LinkClassSpec(1).nic_bandwidth_bps, GbpsToBytesPerSec(40.0));
}

TEST(TopologyTest, MinCrossShardLatencyScansCrossPairsOnly) {
  Topology topology = TwoNodeTopology(4);
  // Both nodes on one shard: no cross-shard pair exists.
  EXPECT_DOUBLE_EQ(topology.MinCrossShardLatency({0, 0}), 0.0);
  // Split shards: the bound is the fabric's mean latency (no stalls folded in
  // TwoNodeTopology, so it equals the base latency).
  EXPECT_DOUBLE_EQ(topology.MinCrossShardLatency({0, 1}), 300e-6);
}

TEST(NetworkTest, HyperclusterFasterThanCommodity) {
  Topology commodity(CommodityFabric());
  commodity.AddNode(Nc24V3().node);
  commodity.AddNode(Nc24V3().node);
  Network commodity_net(&commodity);

  Topology hyper(HyperclusterFabric());
  hyper.AddNode(Dgx2().node);
  hyper.AddNode(Dgx2().node);
  Network hyper_net(&hyper);

  const double bytes = 100e6;
  EXPECT_LT(hyper_net.MeanTransferTime(0, 16, bytes, 1),
            commodity_net.MeanTransferTime(0, 4, bytes, 1) / 10.0);
}

}  // namespace
}  // namespace varuna
