#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/nn/layers.h"
#include "src/nn/optimizer.h"
#include "src/nn/synthetic_task.h"

namespace varuna {
namespace {

// Numerical gradient check for a layer via central differences on a scalar
// objective sum(output * probe).
void CheckLayerGradients(Layer* layer, const Tensor& input, Rng* rng, float tolerance) {
  const Tensor output = layer->Forward(input);
  Tensor probe = Tensor::Randn(output.shape(), rng, 1.0f);
  layer->ZeroGradients();
  const Tensor grad_input = layer->Backward(probe);

  auto objective = [&](const Tensor& x) {
    Tensor out = layer->Forward(x);
    double sum = 0.0;
    for (int64_t i = 0; i < out.size(); ++i) {
      sum += static_cast<double>(out[i]) * probe[i];
    }
    return sum;
  };

  // Check input gradient at a few coordinates.
  const float epsilon = 1e-3f;
  Tensor x = input;
  for (int64_t i = 0; i < std::min<int64_t>(x.size(), 6); ++i) {
    const float original = x[i];
    x[i] = original + epsilon;
    const double up = objective(x);
    x[i] = original - epsilon;
    const double down = objective(x);
    x[i] = original;
    const double numeric = (up - down) / (2.0 * epsilon);
    EXPECT_NEAR(grad_input[i], numeric, tolerance) << "input coord " << i;
  }

  // Check parameter gradients at a few coordinates of each parameter.
  (void)layer->Forward(input);
  layer->ZeroGradients();
  (void)layer->Backward(probe);
  std::vector<Tensor*> params = layer->Parameters();
  std::vector<Tensor*> grads = layer->Gradients();
  for (size_t p = 0; p < params.size(); ++p) {
    Tensor& param = *params[p];
    const Tensor analytic = *grads[p];
    for (int64_t i = 0; i < std::min<int64_t>(param.size(), 4); ++i) {
      const float original = param[i];
      param[i] = original + epsilon;
      const double up = objective(input);
      param[i] = original - epsilon;
      const double down = objective(input);
      param[i] = original;
      const double numeric = (up - down) / (2.0 * epsilon);
      EXPECT_NEAR(analytic[i], numeric, tolerance) << "param " << p << " coord " << i;
    }
  }
}

TEST(LayersTest, LinearGradientCheck) {
  Rng rng(1);
  Linear layer(5, 4, &rng);
  const Tensor input = Tensor::Randn({3, 5}, &rng, 1.0f);
  CheckLayerGradients(&layer, input, &rng, 2e-2f);
}

TEST(LayersTest, GeluGradientCheck) {
  Rng rng(2);
  Gelu layer;
  const Tensor input = Tensor::Randn({3, 4}, &rng, 1.0f);
  CheckLayerGradients(&layer, input, &rng, 2e-2f);
}

TEST(LayersTest, LayerNormGradientCheck) {
  Rng rng(3);
  LayerNorm layer(6);
  const Tensor input = Tensor::Randn({2, 6}, &rng, 1.0f);
  CheckLayerGradients(&layer, input, &rng, 3e-2f);
}

TEST(LayersTest, MlpBlockGradientCheck) {
  Rng rng(4);
  MlpBlock layer(4, 2, &rng);
  const Tensor input = Tensor::Randn({2, 4}, &rng, 1.0f);
  CheckLayerGradients(&layer, input, &rng, 5e-2f);
}

TEST(LayersTest, SequentialComposes) {
  Rng rng(5);
  Sequential model;
  model.Append(std::make_unique<Linear>(4, 8, &rng));
  model.Append(std::make_unique<Gelu>());
  model.Append(std::make_unique<Linear>(8, 3, &rng));
  const Tensor input = Tensor::Randn({2, 4}, &rng, 1.0f);
  const Tensor out = model.Forward(input);
  EXPECT_EQ(out.dim(0), 2);
  EXPECT_EQ(out.dim(1), 3);
  EXPECT_EQ(model.Parameters().size(), 4u);
  CheckLayerGradients(&model, input, &rng, 3e-2f);
}

TEST(LayersTest, SequentialSplitPreservesParams) {
  Rng rng(6);
  auto model = BuildBlockModel(8, 16, 4, &rng);
  const size_t total_params = model->Parameters().size();
  auto stages = Sequential::Split(std::move(model), {0, 2, 4, 6});
  ASSERT_EQ(stages.size(), 3u);
  size_t split_params = 0;
  for (auto& stage : stages) {
    split_params += stage->Parameters().size();
  }
  EXPECT_EQ(split_params, total_params);
}

TEST(LayersTest, RecomputeReproducesForwardState) {
  // Gradient checkpointing correctness: backward after a re-forward from the
  // stashed input gives the same gradients as backward right after forward.
  Rng rng(7);
  MlpBlock layer(6, 2, &rng);
  const Tensor input = Tensor::Randn({3, 6}, &rng, 1.0f);
  const Tensor out = layer.Forward(input);
  Tensor probe = Tensor::Randn(out.shape(), &rng, 1.0f);

  layer.ZeroGradients();
  (void)layer.Backward(probe);
  std::vector<Tensor> grads_direct;
  for (Tensor* g : layer.Gradients()) {
    grads_direct.push_back(*g);
  }

  // Disturb state with a different forward, then recompute.
  (void)layer.Forward(Tensor::Randn({3, 6}, &rng, 1.0f));
  (void)layer.Forward(input);  // Recompute from stash.
  layer.ZeroGradients();
  (void)layer.Backward(probe);
  std::vector<Tensor*> grads_recomputed = layer.Gradients();
  for (size_t i = 0; i < grads_direct.size(); ++i) {
    EXPECT_TRUE(Identical(grads_direct[i], *grads_recomputed[i]));
  }
}

TEST(LossTest, CrossEntropyKnownValue) {
  Tensor logits({1, 2});
  logits.at(0, 0) = 0.0f;
  logits.at(0, 1) = 0.0f;
  SoftmaxCrossEntropy loss;
  EXPECT_NEAR(loss.Loss(logits, {0}), std::log(2.0), 1e-6);
}

TEST(LossTest, GradientSumsToZeroPerRow) {
  Rng rng(8);
  const Tensor logits = Tensor::Randn({4, 5}, &rng, 2.0f);
  SoftmaxCrossEntropy loss;
  loss.Loss(logits, {0, 1, 2, 3});
  const Tensor grad = loss.Backward();
  for (int i = 0; i < 4; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < 5; ++j) {
      sum += grad.at(i, j);
    }
    EXPECT_NEAR(sum, 0.0f, 1e-6f);
  }
}

TEST(OptimizerTest, SgdStepMovesAgainstGradient) {
  Tensor param({2});
  param.Fill(1.0f);
  Tensor grad({2});
  grad.Fill(0.5f);
  SgdOptimizer sgd({&param}, {&grad}, 0.1f);
  sgd.Step();
  EXPECT_NEAR(param[0], 0.95f, 1e-6f);
}

TEST(OptimizerTest, MomentumAccumulates) {
  Tensor param({1});
  Tensor grad({1});
  grad[0] = 1.0f;
  SgdOptimizer sgd({&param}, {&grad}, 0.1f, 0.9f);
  sgd.Step();  // v=1, p=-0.1
  sgd.Step();  // v=1.9, p=-0.29
  EXPECT_NEAR(param[0], -0.29f, 1e-6f);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  Tensor param({4});
  param.Fill(5.0f);
  Tensor grad({4});
  AdamOptimizer adam({&param}, {&grad}, 0.1f);
  for (int step = 0; step < 500; ++step) {
    for (int i = 0; i < 4; ++i) {
      grad[i] = 2.0f * param[i];  // d/dx of x^2.
    }
    adam.Step();
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(param[i], 0.0f, 1e-2f);
  }
}

TEST(OptimizerTest, GradientNormAndScale) {
  Tensor param({2});
  Tensor grad({2});
  grad[0] = 3.0f;
  grad[1] = 4.0f;
  SgdOptimizer sgd({&param}, {&grad}, 0.1f);
  EXPECT_DOUBLE_EQ(sgd.GradientSquaredNorm(), 25.0);
  sgd.ScaleGradients(0.5f);
  EXPECT_EQ(grad[1], 2.0f);
}

TEST(MarkovTaskTest, TransitionsAreDistributions) {
  MarkovTask task(16, 42);
  Rng rng(1);
  const Batch batch = task.Sample(64, &rng);
  EXPECT_EQ(batch.inputs.dim(0), 64);
  EXPECT_EQ(batch.inputs.dim(1), 16);
  for (int i = 0; i < 64; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < 16; ++j) {
      sum += batch.inputs.at(i, j);
    }
    EXPECT_EQ(sum, 1.0f);  // One-hot.
    EXPECT_GE(batch.targets[static_cast<size_t>(i)], 0);
    EXPECT_LT(batch.targets[static_cast<size_t>(i)], 16);
  }
}

TEST(MarkovTaskTest, OptimalPerplexityBelowUniform) {
  MarkovTask task(16, 42);
  EXPECT_LT(task.OptimalPerplexity(), 16.0);
  EXPECT_GT(task.OptimalPerplexity(), 1.0);
}

TEST(MarkovTaskTest, ModelCanLearnTask) {
  MarkovTask task(8, 7);
  Rng rng(11);
  auto model = BuildBlockModel(8, 16, 2, &rng);
  AdamOptimizer adam(model->Parameters(), model->Gradients(), 3e-3f);
  SoftmaxCrossEntropy loss;
  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int step = 0; step < 300; ++step) {
    const Batch batch = task.Sample(64, &rng);
    adam.ZeroGradients();
    const double value = loss.Loss(model->Forward(batch.inputs), batch.targets);
    model->Backward(loss.Backward());
    adam.Step();
    if (step == 0) {
      first_loss = value;
    }
    last_loss = value;
  }
  EXPECT_LT(last_loss, first_loss - 0.2);
  // Close to the information-theoretic floor.
  Rng val_rng(123);
  const double val = task.ValidationLoss(model.get(), 2048, &val_rng);
  EXPECT_LT(std::exp(val), 1.6 * task.OptimalPerplexity());
}

}  // namespace
}  // namespace varuna
