#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/vm.h"
#include "src/parallel/data_parallel.h"
#include "src/parallel/intra_layer.h"

namespace varuna {
namespace {

TEST(IntraLayerTest, CommodityNetworkCollapses) {
  // Observation 1: on 10 Gbps Ethernet the synchronous per-layer allreduces
  // dominate; Megatron is an order of magnitude slower than on NVLink.
  Cluster commodity(CommodityFabric());
  commodity.AddVms(Nc24V3(), 16);  // 64 GPUs.
  Cluster hyper(HyperclusterFabric());
  hyper.AddVms(Dgx2(), 4);  // 64 GPUs.

  IntraLayerConfig config;
  config.tensor_parallel = 8;
  config.data_parallel = 8;
  config.microbatch_size = 8;
  config.total_batch = 8192;

  const auto on_commodity = EvaluateIntraLayer(Gpt2_8_3B(), commodity, config);
  IntraLayerConfig hyper_config = config;
  hyper_config.tensor_parallel = 16;  // Fits within one DGX-2.
  hyper_config.data_parallel = 4;
  const auto on_hyper = EvaluateIntraLayer(Gpt2_8_3B(), hyper, hyper_config);
  ASSERT_TRUE(on_commodity.ok());
  ASSERT_TRUE(on_hyper.ok());
  EXPECT_GT(on_hyper.value().examples_per_s_per_gpu,
            8.0 * on_commodity.value().examples_per_s_per_gpu);
  // Communication dominates compute on commodity.
  EXPECT_GT(on_commodity.value().tensor_comm_s, 3.0 * on_commodity.value().compute_s);
}

TEST(IntraLayerTest, MemoryNeedsEnoughShards) {
  Cluster hyper(HyperclusterFabric());
  hyper.AddVms(Dgx2(), 2);
  IntraLayerConfig config;
  config.tensor_parallel = 2;
  config.data_parallel = 1;
  config.microbatch_size = 4;
  config.total_batch = 512;
  const auto too_few = EvaluateIntraLayer(Gpt2_8_3B(), hyper, config);
  ASSERT_TRUE(too_few.ok());
  EXPECT_FALSE(too_few.value().fits_memory);
  config.tensor_parallel = 16;
  const auto enough = EvaluateIntraLayer(Gpt2_8_3B(), hyper, config);
  ASSERT_TRUE(enough.ok());
  EXPECT_TRUE(enough.value().fits_memory);
}

TEST(IntraLayerTest, CrossNodeShardingCliff) {
  // Table 4: forcing Megatron past a single DGX-2 (18-way for the 20B model)
  // drops performance by ~10x versus 16-way within the node.
  Cluster hyper(HyperclusterFabric());
  hyper.AddVms(Dgx2(), 18);
  IntraLayerConfig config16;
  config16.tensor_parallel = 16;
  config16.data_parallel = 16;
  config16.microbatch_size = 4;
  config16.total_batch = 8192;
  IntraLayerConfig config18 = config16;
  config18.tensor_parallel = 18;
  config18.data_parallel = 14;
  const auto within = EvaluateIntraLayer(Gpt2_20B(), hyper, config16);
  const auto across = EvaluateIntraLayer(Gpt2_20B(), hyper, config18);
  ASSERT_TRUE(within.ok());
  ASSERT_TRUE(across.ok());
  EXPECT_GT(within.value().examples_per_s_per_gpu,
            4.0 * across.value().examples_per_s_per_gpu);
}

TEST(IntraLayerTest, RejectsOversizedConfig) {
  Cluster cluster(CommodityFabric());
  cluster.AddVms(Nc6V3(), 4);
  IntraLayerConfig config;
  config.tensor_parallel = 8;
  config.data_parallel = 1;
  config.microbatch_size = 1;
  config.total_batch = 64;
  EXPECT_FALSE(EvaluateIntraLayer(Gpt2_2_5B(), cluster, config).ok());
}

TEST(DataParallelTest, BertLargeFitsSingleGpu) {
  Cluster cluster(CommodityFabric());
  cluster.AddVms(Nc24V3(), 8);  // 32 GPUs.
  DataParallelConfig config;
  config.replicas = 32;
  config.microbatch_size = 8;
  config.total_batch = 32768;
  config.gradient_checkpointing = true;
  const auto result = EvaluateDataParallel(BertLarge(), cluster, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().fits_memory);
  EXPECT_GT(result.value().examples_per_s, 0.0);
}

TEST(DataParallelTest, MassiveModelDoesNotFit) {
  Cluster cluster(CommodityFabric());
  cluster.AddVms(Nc6V3(), 2);
  DataParallelConfig config;
  config.replicas = 2;
  config.microbatch_size = 1;
  config.total_batch = 512;
  const auto result = EvaluateDataParallel(Gpt2_2_5B(), cluster, config);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().fits_memory);
}

TEST(DataParallelTest, AllreduceCostGrowsWithModel) {
  Cluster cluster(CommodityFabric());
  cluster.AddVms(Nc6V3(), 8);
  DataParallelConfig config;
  config.replicas = 8;
  config.microbatch_size = 8;
  config.total_batch = 4096;
  const auto small = EvaluateDataParallel(Gpt2Medium(), cluster, config);
  const auto large = EvaluateDataParallel(BertLarge(), cluster, config);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(small.value().allreduce_s, 0.0);
}

}  // namespace
}  // namespace varuna
