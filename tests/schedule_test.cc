#include <gtest/gtest.h>

#include <set>

#include "src/pipeline/schedule.h"

namespace varuna {
namespace {

// Counts ops of a type for one stage.
int Count(const Schedule& schedule, int stage, PipeOpType type) {
  int count = 0;
  for (const PipeOp& op : schedule.ops[static_cast<size_t>(stage)]) {
    count += op.type == type;
  }
  return count;
}

// Validates the universal invariants every synchronous schedule must satisfy.
void CheckScheduleInvariants(const Schedule& schedule) {
  for (int s = 0; s < schedule.depth; ++s) {
    const auto& ops = schedule.ops[static_cast<size_t>(s)];
    std::set<int> forwards;
    std::set<int> backwards;
    std::set<int> recomputes;
    int last_forward = -1;
    for (const PipeOp& op : ops) {
      switch (op.type) {
        case PipeOpType::kForward:
          // Forwards strictly in micro-batch order.
          EXPECT_GT(op.microbatch, last_forward) << "stage " << s;
          last_forward = op.microbatch;
          EXPECT_TRUE(forwards.insert(op.microbatch).second);
          break;
        case PipeOpType::kRecompute:
          // Recompute only after this stage's own forward, before backward.
          EXPECT_TRUE(forwards.count(op.microbatch)) << "stage " << s;
          EXPECT_FALSE(backwards.count(op.microbatch)) << "stage " << s;
          EXPECT_TRUE(recomputes.insert(op.microbatch).second);
          break;
        case PipeOpType::kBackward:
          EXPECT_TRUE(forwards.count(op.microbatch)) << "stage " << s;
          EXPECT_TRUE(backwards.insert(op.microbatch).second);
          break;
        case PipeOpType::kIdleForward:
        case PipeOpType::kIdleBackward:
          break;
      }
    }
    // Every micro-batch forwarded and backwarded exactly once.
    EXPECT_EQ(static_cast<int>(forwards.size()), schedule.num_microbatches) << "stage " << s;
    EXPECT_EQ(static_cast<int>(backwards.size()), schedule.num_microbatches) << "stage " << s;
  }
}

class AllSchedulesTest : public ::testing::TestWithParam<ScheduleKind> {};

TEST_P(AllSchedulesTest, InvariantsHold) {
  for (const int depth : {1, 2, 4, 8}) {
    for (const int microbatches : {1, 3, 5, 16}) {
      const Schedule schedule = GenerateSchedule(GetParam(), depth, microbatches);
      EXPECT_EQ(schedule.depth, depth);
      EXPECT_EQ(schedule.num_microbatches, microbatches);
      CheckScheduleInvariants(schedule);
    }
  }
}

TEST_P(AllSchedulesTest, ExecutableWithoutDeadlock) {
  for (const int depth : {2, 4, 6}) {
    for (const int microbatches : {2, 5, 12}) {
      const Schedule schedule = GenerateSchedule(GetParam(), depth, microbatches);
      // ScheduleMakespanUnits CHECK-fails on deadlock.
      EXPECT_GT(ScheduleMakespanUnits(schedule), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllSchedulesTest,
                         ::testing::Values(ScheduleKind::kVaruna, ScheduleKind::kGpipe,
                                           ScheduleKind::kOneFOneB, ScheduleKind::kDeepSpeed),
                         [](const ::testing::TestParamInfo<ScheduleKind>& param_info) {
                           return ToString(param_info.param);
                         });

TEST(VarunaScheduleTest, LastStageNeverRecomputes) {
  for (const int depth : {2, 4, 8}) {
    const Schedule schedule = GenerateSchedule(ScheduleKind::kVaruna, depth, 8);
    EXPECT_EQ(Count(schedule, depth - 1, PipeOpType::kRecompute), 0);
  }
}

TEST(VarunaScheduleTest, LastStageAlternatesForwardBackward) {
  const Schedule schedule = GenerateSchedule(ScheduleKind::kVaruna, 4, 5);
  const auto& ops = schedule.ops[3];
  ASSERT_EQ(ops.size(), 10u);
  for (int m = 0; m < 5; ++m) {
    EXPECT_EQ(ops[static_cast<size_t>(2 * m)], (PipeOp{PipeOpType::kForward, m}));
    EXPECT_EQ(ops[static_cast<size_t>(2 * m) + 1], (PipeOp{PipeOpType::kBackward, m}));
  }
}

TEST(VarunaScheduleTest, NonLastStagesRecomputeEveryMicrobatch) {
  const Schedule schedule = GenerateSchedule(ScheduleKind::kVaruna, 4, 5);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(Count(schedule, s, PipeOpType::kRecompute), 5);
  }
}

TEST(VarunaScheduleTest, RecomputeImmediatelyPrecedesBackward) {
  // Rule 2: after R(m), the next op must be B(m).
  const Schedule schedule = GenerateSchedule(ScheduleKind::kVaruna, 6, 12);
  for (int s = 0; s < schedule.depth - 1; ++s) {
    const auto& ops = schedule.ops[static_cast<size_t>(s)];
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].type == PipeOpType::kRecompute) {
        ASSERT_LT(i + 1, ops.size());
        EXPECT_EQ(ops[i + 1].type, PipeOpType::kBackward);
        EXPECT_EQ(ops[i + 1].microbatch, ops[i].microbatch);
      }
    }
  }
}

TEST(VarunaScheduleTest, BeatsGpipeMakespanFigure4) {
  // Figure 4: 4 stages, 5 micro-batches — "Varuna ... uses 1 less time unit".
  const double varuna = ScheduleMakespanUnits(GenerateSchedule(ScheduleKind::kVaruna, 4, 5));
  const double gpipe = ScheduleMakespanUnits(GenerateSchedule(ScheduleKind::kGpipe, 4, 5));
  EXPECT_LT(varuna, gpipe);
}

TEST(VarunaScheduleTest, NeverWorseThanGpipeAcrossConfigs) {
  for (const int depth : {2, 4, 8}) {
    for (const int microbatches : {4, 8, 24}) {
      const double varuna =
          ScheduleMakespanUnits(GenerateSchedule(ScheduleKind::kVaruna, depth, microbatches));
      const double gpipe =
          ScheduleMakespanUnits(GenerateSchedule(ScheduleKind::kGpipe, depth, microbatches));
      EXPECT_LE(varuna, gpipe + 1e-9) << depth << "x" << microbatches;
    }
  }
}

TEST(VarunaScheduleTest, InterspersedForwards) {
  // Unlike GPipe, interior stages interleave forwards with backward work
  // (the property that enables opportunistic scheduling under jitter).
  const Schedule schedule = GenerateSchedule(ScheduleKind::kVaruna, 4, 5);
  const auto& ops = schedule.ops[2];  // Stage 3 of 4 in Figure 4.
  bool seen_backward = false;
  bool forward_after_backward = false;
  for (const PipeOp& op : ops) {
    seen_backward |= op.type == PipeOpType::kBackward;
    forward_after_backward |= seen_backward && op.type == PipeOpType::kForward;
  }
  EXPECT_TRUE(forward_after_backward);
}

TEST(GpipeScheduleTest, AllForwardsBeforeBackwards) {
  const Schedule schedule = GenerateSchedule(ScheduleKind::kGpipe, 4, 5);
  for (int s = 0; s < 4; ++s) {
    const auto& ops = schedule.ops[static_cast<size_t>(s)];
    for (int m = 0; m < 5; ++m) {
      EXPECT_EQ(ops[static_cast<size_t>(m)], (PipeOp{PipeOpType::kForward, m}));
    }
    // Backwards run in reverse order; latest micro-batch skips recompute.
    EXPECT_EQ(ops[5], (PipeOp{PipeOpType::kBackward, 4}));
    EXPECT_EQ(ops[6], (PipeOp{PipeOpType::kRecompute, 3}));
  }
}

TEST(OneFOneBScheduleTest, WarmupDepthMatchesStage) {
  const int depth = 4;
  const Schedule schedule = GenerateSchedule(ScheduleKind::kOneFOneB, depth, 8);
  for (int s = 0; s < depth; ++s) {
    const auto& ops = schedule.ops[static_cast<size_t>(s)];
    int warmup = 0;
    while (warmup < static_cast<int>(ops.size()) &&
           ops[static_cast<size_t>(warmup)].type == PipeOpType::kForward) {
      ++warmup;
    }
    EXPECT_EQ(warmup, depth - s) << "stage " << s;  // P-1-s warmup + 1 steady F.
  }
}

TEST(DeepSpeedScheduleTest, HasIdleSlots) {
  const Schedule schedule = GenerateSchedule(ScheduleKind::kDeepSpeed, 4, 8);
  int idles = 0;
  for (int s = 0; s < schedule.depth; ++s) {
    idles += Count(schedule, s, PipeOpType::kIdleForward) +
             Count(schedule, s, PipeOpType::kIdleBackward);
  }
  EXPECT_GT(idles, 0);
}

TEST(DeepSpeedScheduleTest, SlowerThanOneFOneB) {
  const double deepspeed =
      ScheduleMakespanUnits(GenerateSchedule(ScheduleKind::kDeepSpeed, 4, 8));
  const double one_f_one_b =
      ScheduleMakespanUnits(GenerateSchedule(ScheduleKind::kOneFOneB, 4, 8));
  EXPECT_GE(deepspeed, one_f_one_b);
}

TEST(ScheduleRenderTest, GanttMentionsEveryStage) {
  const Schedule schedule = GenerateSchedule(ScheduleKind::kVaruna, 4, 5);
  const std::string gantt = RenderScheduleGantt(schedule);
  for (int s = 1; s <= 4; ++s) {
    EXPECT_NE(gantt.find("S" + std::to_string(s)), std::string::npos);
  }
}

TEST(ScheduleTest, OnlyVarunaIsOpportunistic) {
  EXPECT_TRUE(GenerateSchedule(ScheduleKind::kVaruna, 2, 2).opportunistic);
  EXPECT_FALSE(GenerateSchedule(ScheduleKind::kGpipe, 2, 2).opportunistic);
  EXPECT_FALSE(GenerateSchedule(ScheduleKind::kOneFOneB, 2, 2).opportunistic);
  EXPECT_FALSE(GenerateSchedule(ScheduleKind::kDeepSpeed, 2, 2).opportunistic);
}

}  // namespace
}  // namespace varuna
