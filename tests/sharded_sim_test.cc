// Sharded-vs-serial bit-identity for the node-sharded simulation engine.
//
// The property under test: for a workload that honours the sharding contract
// (node-local side effects, per-node Rng forks, cross-node sends delayed by
// at least the lookahead), the per-node streams of fired events — and hence
// any fingerprint folded over them — are bit-identical at EVERY shard count,
// with and without a thread pool. Shards=1 delegates to the serial engine
// unchanged (tombstone-gated RunUntil quirk included), so streams are
// compared filtered to the final horizon: the quirk may fire one event past
// a horizon at S=1 that S>1 defers, without perturbing the global order.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/chaos/chaos.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/common/units.h"
#include "src/net/topology.h"
#include "src/sim/sharded_engine.h"

namespace varuna {
namespace {

struct Fired {
  double when = 0.0;
  uint64_t payload = 0;
};

// Per-node state: everything a callback may touch, so shard placement can
// never leak into the observable stream.
struct NodeState {
  Rng rng{0};
  std::vector<Fired> fired;
  ShardedSimEngine::LocalEventId pending{};  // Cancel target for peers.
  uint64_t pumps = 0;
};

uint64_t FoldFingerprint(const std::vector<NodeState>& nodes, double horizon) {
  uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  for (const NodeState& node : nodes) {
    for (const Fired& event : node.fired) {
      if (event.when > horizon) {
        continue;  // S=1's RunUntil quirk may overshoot the final horizon.
      }
      uint64_t when_bits = 0;
      std::memcpy(&when_bits, &event.when, sizeof(when_bits));
      mix(when_bits);
      mix(event.payload);
    }
    mix(0x9e3779b97f4a7c15ull);  // Node separator.
  }
  return hash;
}

// Self-rescheduling per-node pump chains with cross-node sends, local
// cancels, and peer-triggered cancels — the storm shape the serial engine
// benches use, restated under the sharding contract.
class ContractWorkload {
 public:
  ContractWorkload(int num_nodes, uint64_t seed, double lookahead)
      : lookahead_(lookahead), nodes_(static_cast<size_t>(num_nodes)) {
    Rng root(seed);
    for (NodeState& node : nodes_) {
      node.rng = root.Fork();
    }
  }

  void Start(ShardedSimEngine* engine) {
    for (int node = 0; node < static_cast<int>(nodes_.size()); ++node) {
      engine->ScheduleLocal(node, 0.01 * (node + 1), [this, engine, node] {
        Pump(engine, node);
      });
    }
  }

  const std::vector<NodeState>& nodes() const { return nodes_; }

 private:
  void Pump(ShardedSimEngine* engine, int node) {
    NodeState& state = nodes_[static_cast<size_t>(node)];
    const uint64_t draw = state.rng.NextUint64();
    state.fired.push_back({engine->now(), draw});
    ++state.pumps;
    const int peer = static_cast<int>((static_cast<uint64_t>(node) + 1 + draw % 3) %
                                      nodes_.size());
    if (state.pumps % 4 == 0 && peer != node) {
      // Cross-node message: mixes into the PEER's stream when it fires
      // there. Delay >= lookahead keeps it legal at every shard count.
      const double delay = lookahead_ * (1.0 + static_cast<double>(draw % 128) / 64.0);
      engine->Send(node, peer, delay, [this, engine, peer, draw] {
        nodes_[static_cast<size_t>(peer)].fired.push_back({engine->now(), draw ^ 0xabcdu});
      });
    }
    if (state.pumps % 5 == 0) {
      // Arm a local doomed event, remembered so a peer message can cancel it.
      state.pending = engine->ScheduleLocal(node, 0.8, [this, engine, node] {
        nodes_[static_cast<size_t>(node)].fired.push_back({engine->now(), 0xdeadu});
      });
    }
    if (state.pumps % 7 == 0 && peer != node) {
      // Peer-triggered cancel: fires on `peer`, cancels whatever id that node
      // last armed — often already fired, so the stale-id no-op path runs.
      engine->Send(node, peer, lookahead_ * 2.0, [this, engine, peer] {
        engine->Cancel(nodes_[static_cast<size_t>(peer)].pending);
      });
    }
    if (state.pumps % 11 == 0) {
      engine->Cancel(state.pending);  // Same-node cancel, immediate.
    }
    engine->ScheduleLocal(node, 0.002 + 0.001 * static_cast<double>(draw % 16), [
      this, engine, node
    ] { Pump(engine, node); });
  }

  double lookahead_ = 0.0;
  std::vector<NodeState> nodes_;
};

constexpr double kLookahead = 300e-6;

uint64_t RunContractWorkload(int num_nodes, int num_shards, uint64_t seed,
                             ThreadPool* pool, double horizon) {
  ShardedSimEngine engine(num_nodes, num_shards, kLookahead, pool);
  ContractWorkload workload(num_nodes, seed, kLookahead);
  workload.Start(&engine);
  // Drive in increments like the trainers do, so window/horizon interactions
  // (and the S=1 overshoot quirk) are exercised mid-run, not just at the end.
  double t = 0.0;
  while (t < horizon) {
    t = t + 0.05 < horizon ? t + 0.05 : horizon;
    engine.RunUntil(t);
    engine.CheckInvariants();
  }
  return FoldFingerprint(workload.nodes(), horizon);
}

TEST(ShardedSimTest, FingerprintBitIdenticalAcrossShardCounts) {
  const int kNodes = 12;
  const double kHorizon = 0.6;
  for (const uint64_t seed : {2026ull, 7ull, 31337ull}) {
    SCOPED_TRACE(seed);
    const uint64_t serial = RunContractWorkload(kNodes, 1, seed, nullptr, kHorizon);
    for (const int shards : {2, 3, 4, 8, 12}) {
      SCOPED_TRACE(shards);
      EXPECT_EQ(RunContractWorkload(kNodes, shards, seed, nullptr, kHorizon), serial);
    }
  }
}

TEST(ShardedSimTest, FingerprintBitIdenticalWithThreadPool) {
  const int kNodes = 12;
  const double kHorizon = 0.6;
  const uint64_t serial = RunContractWorkload(kNodes, 1, 2026, nullptr, kHorizon);
  ThreadPool pool(4);
  for (const int shards : {1, 2, 4, 8}) {
    SCOPED_TRACE(shards);
    EXPECT_EQ(RunContractWorkload(kNodes, shards, 2026, &pool, kHorizon), serial);
  }
}

TEST(ShardedSimTest, CountersTrackWindowsAndParcels) {
  ShardedSimEngine engine(12, 4, kLookahead, nullptr);
  ContractWorkload workload(12, 2026, kLookahead);
  workload.Start(&engine);
  engine.RunUntil(0.3);
  EXPECT_GT(engine.window_syncs(), 0u);
  EXPECT_GT(engine.cross_shard_parcels(), 0u);
  uint64_t per_shard_total = 0;
  for (int shard = 0; shard < engine.num_shards(); ++shard) {
    per_shard_total += engine.shard_events_processed(shard);
  }
  EXPECT_EQ(per_shard_total, engine.events_processed());
  EXPECT_GE(engine.shard_imbalance(), 1.0);
  engine.CheckInvariants();
}

TEST(ShardedSimTest, ChaosPlanDerivedWorkloadsReplayAcrossShardCounts) {
  // Property sweep: seeded random chaos plans shape event/cancel patterns
  // (times, fan-outs, magnitudes from ChaosPlan::Random), and every shard
  // count must fold to the serial fingerprint.
  const int kNodes = 10;
  const double kHorizon = 2.0;
  for (uint64_t campaign = 0; campaign < 20; ++campaign) {
    SCOPED_TRACE(campaign);
    Rng plan_rng(9000 + campaign);
    const ChaosPlan plan = ChaosPlan::Random(&plan_rng, kHorizon, 6);

    const auto run = [&](int shards) {
      ShardedSimEngine engine(kNodes, shards, kLookahead, nullptr);
      std::vector<NodeState> nodes(kNodes);
      Rng root(1000 + campaign);
      for (NodeState& node : nodes) {
        node.rng = root.Fork();
      }
      for (const ChaosAction& action : plan.actions) {
        const int node = action.count % kNodes;
        const int victim = (node + static_cast<int>(action.kind) + 1) % kNodes;
        engine.ScheduleLocal(node, action.at_s, [&engine, &nodes, node, victim, action] {
          NodeState& state = nodes[static_cast<size_t>(node)];
          const uint64_t draw = state.rng.NextUint64();
          state.fired.push_back(
              {engine.now(), draw ^ static_cast<uint64_t>(action.kind)});
          // Each action fans a burst out to a victim node, spread beyond the
          // lookahead like real recovery traffic.
          for (int i = 0; i < 1 + action.count % 4; ++i) {
            const double delay = kLookahead * (2.0 + i) +
                                 action.duration_s / 1000.0;
            engine.Send(node, victim, delay, [&engine, &nodes, victim, draw, i] {
              nodes[static_cast<size_t>(victim)].fired.push_back(
                  {engine.now(), draw + static_cast<uint64_t>(i)});
            });
          }
        });
      }
      engine.RunUntil(kHorizon);
      engine.CheckInvariants();
      return FoldFingerprint(nodes, kHorizon);
    };

    const uint64_t serial = run(1);
    for (const int shards : {2, 4, 5, 10}) {
      ASSERT_EQ(run(shards), serial) << "shards=" << shards;
    }
  }
}

TEST(ShardedSimTest, EventsExactlyAtLookaheadHorizonFireOnce) {
  // Window bound arithmetic: events landing exactly on W + lookahead (the
  // next window's open edge) and exactly on the RunUntil horizon must fire
  // exactly once, in key order, at every shard count.
  const int kNodes = 4;
  const auto run = [&](int shards) {
    ShardedSimEngine engine(kNodes, shards, kLookahead, nullptr);
    std::vector<NodeState> nodes(kNodes);
    // Seed event at t=0.1 on node 0; peers at exact lookahead multiples.
    engine.ScheduleLocal(0, 0.1, [&engine, &nodes] {
      nodes[0].fired.push_back({engine.now(), 1});
      // Exactly one lookahead ahead: lands precisely on the window bound.
      engine.Send(0, 2, kLookahead, [&engine, &nodes] {
        nodes[2].fired.push_back({engine.now(), 2});
      });
      engine.Send(0, 3, 2.0 * kLookahead, [&engine, &nodes] {
        nodes[3].fired.push_back({engine.now(), 3});
      });
    });
    // An event exactly AT the final horizon (fires: RunUntil's gate is <=).
    engine.ScheduleLocal(1, 0.1 + kLookahead, [&engine, &nodes] {
      nodes[1].fired.push_back({engine.now(), 4});
    });
    engine.RunUntil(0.1 + kLookahead);
    engine.RunUntil(1.0);
    engine.CheckInvariants();
    EXPECT_EQ(engine.pending_events(), 0u);
    return FoldFingerprint(nodes, 1.0);
  };
  const uint64_t serial = run(1);
  for (const int shards : {2, 4}) {
    EXPECT_EQ(run(shards), serial) << "shards=" << shards;
  }
}

TEST(ShardedSimTest, CrossShardCancelOfStaleGenerationTaggedId) {
  // A cancel message racing its target: node 0 arms two events on itself and
  // node 3 sends cancels for both — one arrives before its target fires
  // (event removed), one after (stale generation-tagged id, safe no-op).
  const auto run = [&](int shards) {
    ShardedSimEngine engine(4, shards, kLookahead, nullptr);
    std::vector<NodeState> nodes(4);
    NodeState& owner = nodes[0];
    // Doomed: fires late enough for the cancel to win.
    owner.pending = engine.ScheduleLocal(0, 10.0 * kLookahead, [&engine, &nodes] {
      nodes[0].fired.push_back({engine.now(), 0xbad});
    });
    ShardedSimEngine::LocalEventId survivor =
        engine.ScheduleLocal(0, 2.0 * kLookahead, [&engine, &nodes] {
          nodes[0].fired.push_back({engine.now(), 0x600d});
        });
    // Node 3's cancel for the doomed event arrives at 4*lookahead < 10*.
    engine.Send(3, 0, 4.0 * kLookahead, [&engine, &owner] {
      engine.Cancel(owner.pending);
    });
    // Node 3's cancel for the survivor arrives at 6*lookahead > 2* — the
    // event has fired and its slot may be reused; the stale id must no-op.
    engine.Send(3, 0, 6.0 * kLookahead, [&engine, survivor] {
      engine.Cancel(survivor);
    });
    engine.RunUntil(20.0 * kLookahead);
    engine.CheckInvariants();
    EXPECT_EQ(engine.pending_events(), 0u);
    return FoldFingerprint(nodes, 20.0 * kLookahead);
  };
  const uint64_t serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(4), serial);
  // The survivor fired, the doomed one did not: pin the content too.
  // (Folded into the fingerprint; a direct probe keeps the failure readable.)
  ShardedSimEngine engine(4, 4, kLookahead, nullptr);
  std::vector<uint64_t> seen;
  ShardedSimEngine::LocalEventId doomed =
      engine.ScheduleLocal(0, 10.0 * kLookahead, [&seen] { seen.push_back(0xbad); });
  engine.ScheduleLocal(0, 2.0 * kLookahead, [&seen] { seen.push_back(0x600d); });
  engine.Send(3, 0, 4.0 * kLookahead, [&engine, doomed] { engine.Cancel(doomed); });
  engine.RunUntil(20.0 * kLookahead);
  EXPECT_EQ(seen, (std::vector<uint64_t>{0x600d}));
}

TEST(ShardedSimTest, ForTopologyDerivesLookaheadAndFallsBackOnZeroLatency) {
  FabricSpec fabric;
  fabric.per_flow_bandwidth_bps = GbpsToBytesPerSec(5.0);
  fabric.base_latency_s = 300e-6;
  Topology topology(fabric);
  NodeSpec node;
  node.num_gpus = 1;
  node.intra_bandwidth_bps = GbpsToBytesPerSec(96.0);
  node.intra_latency_s = 10e-6;
  node.nic_bandwidth_bps = GbpsToBytesPerSec(10.0);
  for (int i = 0; i < 8; ++i) {
    topology.AddNode(node);
  }
  ShardedSimEngine sharded = ShardedSimEngine::ForTopology(topology, 4);
  EXPECT_EQ(sharded.num_shards(), 4);
  EXPECT_DOUBLE_EQ(sharded.lookahead(), 300e-6);
  // Contiguous balanced partition.
  EXPECT_EQ(sharded.shard_of(0), 0);
  EXPECT_EQ(sharded.shard_of(7), 3);

  // Zero-latency fabric: no conservative window exists — one shard.
  FabricSpec instant;
  instant.per_flow_bandwidth_bps = GbpsToBytesPerSec(5.0);
  Topology flat(instant);
  for (int i = 0; i < 8; ++i) {
    flat.AddNode(node);
  }
  ShardedSimEngine degraded = ShardedSimEngine::ForTopology(flat, 4);
  EXPECT_EQ(degraded.num_shards(), 1);

  // More shards than nodes clamps to the node count.
  ShardedSimEngine clamped = ShardedSimEngine::ForTopology(topology, 64);
  EXPECT_EQ(clamped.num_shards(), 8);
}

TEST(ShardedSimTest, SingleShardMatchesSerialEngineQuirkExactly) {
  // S=1 must BE today's engine: the tombstone-gated RunUntil quirk fires one
  // live event past the horizon when a cancelled entry sorts earlier.
  ShardedSimEngine sharded(2, 1, kLookahead, nullptr);
  bool late_fired = false;
  const auto doomed = sharded.ScheduleLocal(0, 1.0, [] {});
  sharded.ScheduleLocal(0, 5.0, [&late_fired] { late_fired = true; });
  sharded.Cancel(doomed);
  sharded.RunUntil(2.0);
  EXPECT_TRUE(late_fired);
  EXPECT_DOUBLE_EQ(sharded.now(), 2.0);

  // At S=2 the strict window gate defers the same event — the documented
  // divergence the horizon filter absorbs, pinned here so it stays a choice.
  ShardedSimEngine strict(2, 2, kLookahead, nullptr);
  bool strict_fired = false;
  const auto doomed2 = strict.ScheduleLocal(0, 1.0, [] {});
  strict.ScheduleLocal(0, 5.0, [&strict_fired] { strict_fired = true; });
  strict.Cancel(doomed2);
  strict.RunUntil(2.0);
  EXPECT_FALSE(strict_fired);
  strict.RunUntil(6.0);
  EXPECT_TRUE(strict_fired);
}

}  // namespace
}  // namespace varuna
