// Property test for the slot-pool event engine (PR-5 fast-sim core): drives
// seeded random Schedule/Cancel/RunUntil sequences against a naive reference
// model (a flat list of entries sorted on demand) and requires the fired-token
// stream to match exactly, with CheckInvariants() holding throughout.
//
// The reference model replicates the engine's documented edge semantics:
//  * cancelled events leave tombstone entries behind until popped;
//  * RunUntil gates on the earliest *entry* (tombstones included), so it may
//    fire one live event past `until` when a tombstone sorts earlier — the
//    historical lazy-cancel behaviour the engine preserves for bit-identical
//    replay;
//  * after RunUntil, now() == until regardless of what fired.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/engine.h"

namespace varuna {
namespace {

struct ModelEntry {
  double when = 0.0;
  uint64_t order = 0;  // Insertion order: the engine's (when, seq) tie-break.
  int token = 0;
  SimEngine::EventId id = 0;
  bool cancelled = false;
};

class ReferenceModel {
 public:
  void Schedule(double when, uint64_t order, int token, SimEngine::EventId id) {
    entries_.push_back({when, order, token, id, false});
  }

  // Marks the entry cancelled (tombstone): it keeps gating RunUntil until a
  // Step pops past it, exactly like the engine's lazy cancel.
  void Cancel(SimEngine::EventId id) {
    for (ModelEntry& entry : entries_) {
      if (entry.id == id && !entry.cancelled) {
        entry.cancelled = true;
        return;
      }
    }
  }

  // Appends the tokens a RunUntil(until) fires, in order.
  void RunUntil(double until, std::vector<int>* fired) {
    for (;;) {
      const int earliest = EarliestIndex();
      if (earliest < 0 || entries_[earliest].when > until) {
        break;
      }
      // One engine Step(): pop entries in (when, order) order until a live
      // one fires — even if that live event lies past `until`.
      bool fired_one = false;
      while (!fired_one) {
        const int next = EarliestIndex();
        if (next < 0) {
          break;
        }
        const ModelEntry entry = entries_[next];
        entries_.erase(entries_.begin() + next);
        if (!entry.cancelled) {
          fired->push_back(entry.token);
          fired_one = true;
        }
      }
      if (!fired_one) {
        break;
      }
    }
  }

  void Drain(std::vector<int>* fired) {
    std::sort(entries_.begin(), entries_.end(), [](const ModelEntry& a, const ModelEntry& b) {
      return a.when != b.when ? a.when < b.when : a.order < b.order;
    });
    for (const ModelEntry& entry : entries_) {
      if (!entry.cancelled) {
        fired->push_back(entry.token);
      }
    }
    entries_.clear();
  }

  size_t live_count() const {
    size_t live = 0;
    for (const ModelEntry& entry : entries_) {
      live += entry.cancelled ? 0 : 1;
    }
    return live;
  }

 private:
  int EarliestIndex() const {
    int best = -1;
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (best < 0 || entries_[i].when < entries_[best].when ||
          (entries_[i].when == entries_[best].when && entries_[i].order < entries_[best].order)) {
        best = static_cast<int>(i);
      }
    }
    return best;
  }

  std::vector<ModelEntry> entries_;
};

TEST(SimEnginePoolTest, RandomScheduleCancelRunMatchesReferenceModel) {
  for (const uint64_t seed : {1ull, 7ull, 1234ull, 987654321ull}) {
    SCOPED_TRACE(seed);
    SimEngine engine;
    ReferenceModel model;
    Rng rng(seed);
    std::vector<int> fired;           // What the engine actually ran.
    std::vector<int> expected_fired;  // What the model says should have run.
    std::vector<SimEngine::EventId> live_ids;
    std::vector<SimEngine::EventId> stale_ids;
    uint64_t order = 0;
    int next_token = 0;

    for (int step = 0; step < 4000; ++step) {
      const double r = rng.NextDouble();
      if (r < 0.55) {
        const double when = engine.now() + rng.Uniform(0.0, 10.0);
        const int token = next_token++;
        const SimEngine::EventId id =
            engine.ScheduleAt(when, [&fired, token] { fired.push_back(token); });
        model.Schedule(when, order++, token, id);
        live_ids.push_back(id);
      } else if (r < 0.72 && !live_ids.empty()) {
        const size_t victim = static_cast<size_t>(rng.NextUint64() % live_ids.size());
        engine.Cancel(live_ids[victim]);
        model.Cancel(live_ids[victim]);
        stale_ids.push_back(live_ids[victim]);
        live_ids.erase(live_ids.begin() + victim);
      } else if (r < 0.82 && !stale_ids.empty()) {
        // Double-cancel / cancel-after-fire: generation tags must make any
        // stale id a no-op even after its slot was reused.
        engine.Cancel(stale_ids[rng.NextUint64() % stale_ids.size()]);
      } else {
        const double until = engine.now() + rng.Uniform(0.0, 4.0);
        model.RunUntil(until, &expected_fired);
        engine.RunUntil(until);
        EXPECT_DOUBLE_EQ(engine.now(), until);
        ASSERT_EQ(fired, expected_fired);
        // live_ids now contains ids that already fired; cancelling one is a
        // no-op on both sides (the model's entry is gone, the engine's
        // generation tag is stale), so the cancel arms stay consistent.
      }
      if (step % 128 == 0) {
        engine.CheckInvariants();
      }
    }

    EXPECT_EQ(engine.pending_events(), model.live_count());
    engine.CheckInvariants();
    engine.Run();
    model.Drain(&expected_fired);
    EXPECT_EQ(fired, expected_fired);
    EXPECT_EQ(engine.pending_events(), 0u);
    engine.CheckInvariants();
  }
}

TEST(SimEnginePoolTest, RunUntilFiresPastGateWhenTombstoneSortsEarlier) {
  // Pin the lazy-cancel quirk the reference model encodes: a cancelled entry
  // before `until` opens the gate, and the Step it admits runs the next LIVE
  // event even though that event lies past `until`.
  SimEngine engine;
  bool late_fired = false;
  const auto doomed = engine.Schedule(1.0, [] {});
  engine.Schedule(5.0, [&] { late_fired = true; });
  engine.Cancel(doomed);
  engine.RunUntil(2.0);
  EXPECT_TRUE(late_fired);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  engine.CheckInvariants();
}

TEST(SimEnginePoolTest, DrainToNeverFiresPastTheGate) {
  // The strict window primitive must NOT reproduce the RunUntil tombstone
  // quirk: with the same doomed-entry setup, the live event past the bound
  // stays queued.
  SimEngine engine;
  bool late_fired = false;
  const auto doomed = engine.Schedule(1.0, [] {});
  engine.Schedule(5.0, [&] { late_fired = true; });
  engine.Cancel(doomed);
  engine.DrainTo(2.0, /*inclusive=*/false);
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(engine.pending_events(), 1u);
  engine.CheckInvariants();
  engine.Run();
  EXPECT_TRUE(late_fired);
}

TEST(SimEnginePoolTest, DrainToGateIsExclusiveOrInclusive) {
  SimEngine engine;
  std::vector<int> fired;
  engine.Schedule(1.0, [&] { fired.push_back(1); });
  engine.Schedule(2.0, [&] { fired.push_back(2); });
  engine.Schedule(3.0, [&] { fired.push_back(3); });
  // Exclusive: an event exactly at the bound belongs to the next window.
  engine.DrainTo(2.0, /*inclusive=*/false);
  EXPECT_EQ(fired, (std::vector<int>{1}));
  // Inclusive: the final user horizon matches RunUntil's <= gate.
  engine.DrainTo(2.0, /*inclusive=*/true);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  engine.AdvanceTo(2.5);
  EXPECT_DOUBLE_EQ(engine.now(), 2.5);
  engine.CheckInvariants();
}

TEST(SimEnginePoolTest, NextLiveWhenSkipsTombstones) {
  SimEngine engine;
  const auto doomed = engine.Schedule(1.0, [] {});
  engine.Schedule(4.0, [] {});
  engine.Cancel(doomed);
  // RunUntil's historical gate would read 1.0 here; the live view reads 4.0.
  EXPECT_DOUBLE_EQ(engine.NextLiveWhen(), 4.0);
  engine.Run();
  EXPECT_TRUE(std::isinf(engine.NextLiveWhen()));
}

TEST(SimEnginePoolTest, KeyedSchedulingOrdersByCallerKeyAndExposesTag) {
  // ScheduleAtKeyed replaces the internal sequence tie-break with the
  // caller's key — the sharded engine's (origin, emission) canon keys — and
  // tags the event so the firing callback can learn its node context.
  SimEngine engine;
  std::vector<int> order;
  std::vector<uint32_t> tags;
  const auto record = [&](int label) {
    return [&, label] {
      order.push_back(label);
      tags.push_back(engine.current_tag());
    };
  };
  // Same timestamp, keys deliberately issued out of submission order.
  engine.ScheduleAtKeyed(1.0, /*key=*/30, /*tag=*/3, record(30));
  engine.ScheduleAtKeyed(1.0, /*key=*/10, /*tag=*/1, record(10));
  engine.ScheduleAtKeyed(1.0, /*key=*/20, /*tag=*/2, record(20));
  engine.ScheduleAtKeyed(0.5, /*key=*/99, /*tag=*/9, record(99));
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{99, 10, 20, 30}));
  EXPECT_EQ(tags, (std::vector<uint32_t>{9, 1, 2, 3}));
  engine.CheckInvariants();
}

TEST(SimEnginePoolTest, KeyedEventsCancelLikePlainOnes) {
  SimEngine engine;
  int fired = 0;
  const auto id = engine.ScheduleAtKeyed(1.0, 7, 1, [&] { ++fired; });
  engine.ScheduleAtKeyed(1.0, 8, 1, [&] { ++fired; });
  engine.Cancel(id);
  engine.Cancel(id);  // Stale double-cancel stays a no-op.
  engine.Run();
  EXPECT_EQ(fired, 1);
  engine.CheckInvariants();
}

TEST(SimEnginePoolTest, StressedQueueKeepsInvariantsUnderChurn) {
  // Heavy interleaved churn at a single timestamp cluster: exercises slot
  // reuse, tombstone accumulation and 4-ary sift paths, with the full
  // invariant sweep after every phase.
  SimEngine engine;
  int fired = 0;
  std::vector<SimEngine::EventId> ids;
  for (int round = 0; round < 50; ++round) {
    ids.clear();
    for (int i = 0; i < 100; ++i) {
      ids.push_back(engine.Schedule(0.5 + 0.001 * (i % 7), [&] { ++fired; }));
    }
    for (size_t i = 0; i < ids.size(); i += 3) {
      engine.Cancel(ids[i]);
    }
    engine.CheckInvariants();
    engine.RunUntil(engine.now() + 1.0);
    engine.CheckInvariants();
    EXPECT_EQ(engine.pending_events(), 0u);
  }
  EXPECT_EQ(fired, 50 * (100 - 34));
}

}  // namespace
}  // namespace varuna
