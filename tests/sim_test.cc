#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine.h"

namespace varuna {
namespace {

TEST(SimEngineTest, RunsEventsInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.Schedule(3.0, [&] { order.push_back(3); });
  engine.Schedule(1.0, [&] { order.push_back(1); });
  engine.Schedule(2.0, [&] { order.push_back(2); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(SimEngineTest, TieBreaksByScheduleOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.Schedule(1.0, [&] { order.push_back(1); });
  engine.Schedule(1.0, [&] { order.push_back(2); });
  engine.Schedule(1.0, [&] { order.push_back(3); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimEngineTest, NestedScheduling) {
  SimEngine engine;
  std::vector<double> times;
  engine.Schedule(1.0, [&] {
    times.push_back(engine.now());
    engine.Schedule(0.5, [&] { times.push_back(engine.now()); });
  });
  engine.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(SimEngineTest, CancelPreventsExecution) {
  SimEngine engine;
  bool fired = false;
  const auto id = engine.Schedule(1.0, [&] { fired = true; });
  engine.Cancel(id);
  engine.Run();
  EXPECT_FALSE(fired);
}

TEST(SimEngineTest, CancelUnknownIdIsNoop) {
  SimEngine engine;
  engine.Cancel(999);
  bool fired = false;
  engine.Schedule(1.0, [&] { fired = true; });
  engine.Run();
  EXPECT_TRUE(fired);
}

TEST(SimEngineTest, RunUntilStopsAtDeadline) {
  SimEngine engine;
  int count = 0;
  // Self-rescheduling ticker.
  std::function<void()> tick = [&] {
    ++count;
    engine.Schedule(1.0, tick);
  };
  engine.Schedule(1.0, tick);
  engine.RunUntil(5.5);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(engine.now(), 5.5);
  engine.RunUntil(7.0);
  EXPECT_EQ(count, 7);  // Ticks at 6.0 and 7.0 both fire.
}

TEST(SimEngineTest, StopHaltsRun) {
  SimEngine engine;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    engine.Schedule(i, [&, i] {
      ++count;
      if (i == 3) {
        engine.Stop();
      }
    });
  }
  engine.Run();
  EXPECT_EQ(count, 3);
}

TEST(SimEngineTest, CancelAfterFireLeavesNoResidue) {
  // Regression: cancelling an id whose event already fired used to park the id
  // in the cancelled list forever (unbounded growth + O(n) scan per step).
  SimEngine engine;
  for (int i = 0; i < 1000; ++i) {
    const auto id = engine.Schedule(1.0, [] {});
    engine.Run();
    engine.Cancel(id);  // Fires first, then cancelled: must be a no-op.
    EXPECT_EQ(engine.pending_events(), 0u);
    engine.CheckInvariants();
  }
}

TEST(SimEngineTest, CancelledEventPurgedOnFireInstant) {
  SimEngine engine;
  const auto id = engine.Schedule(1.0, [] {});
  EXPECT_EQ(engine.pending_events(), 1u);
  engine.Cancel(id);
  EXPECT_EQ(engine.pending_events(), 0u);
  engine.Run();  // Drains the queued tombstone.
  EXPECT_EQ(engine.pending_events(), 0u);
  engine.CheckInvariants();
}

TEST(SimEngineTest, DoubleCancelIsNoop) {
  SimEngine engine;
  bool fired = false;
  const auto id = engine.Schedule(1.0, [&] { fired = true; });
  engine.Schedule(2.0, [] {});
  engine.Cancel(id);
  engine.Cancel(id);
  engine.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.events_processed(), 1u);
  engine.CheckInvariants();
}

TEST(SimEngineTest, InvariantsHoldDuringNestedScheduling) {
  SimEngine engine;
  engine.Schedule(1.0, [&] {
    engine.CheckInvariants();
    engine.Schedule(0.0, [&] { engine.CheckInvariants(); });
    const auto id = engine.Schedule(5.0, [] {});
    engine.Cancel(id);
    engine.CheckInvariants();
  });
  engine.Run();
  EXPECT_EQ(engine.pending_events(), 0u);
}

TEST(SimEngineTest, EventsProcessedCounter) {
  SimEngine engine;
  for (int i = 0; i < 5; ++i) {
    engine.Schedule(i, [] {});
  }
  engine.Run();
  EXPECT_EQ(engine.events_processed(), 5u);
}

TEST(SimEngineTest, CancelThenRescheduleReusesSlotSafely) {
  SimEngine engine;
  bool a_fired = false;
  bool b_fired = false;
  const auto a = engine.Schedule(1.0, [&] { a_fired = true; });
  engine.Cancel(a);
  // The slot freed by the cancel is reused immediately; the generation tag
  // must make the new id distinct from the stale one.
  const auto b = engine.Schedule(2.0, [&] { b_fired = true; });
  EXPECT_NE(a, b);
  engine.Cancel(a);  // Stale id aliasing b's slot: must not cancel b.
  engine.CheckInvariants();
  engine.Run();
  EXPECT_FALSE(a_fired);
  EXPECT_TRUE(b_fired);
  EXPECT_EQ(engine.pending_events(), 0u);
}

TEST(SimEngineTest, StaleIdAfterFireCannotCancelSlotReuser) {
  SimEngine engine;
  int fired = 0;
  const auto a = engine.Schedule(1.0, [&] { ++fired; });
  engine.Run();
  EXPECT_EQ(fired, 1);
  // a's slot is free; the next event takes it with a bumped generation.
  engine.Schedule(1.0, [&] { ++fired; });
  engine.Cancel(a);
  engine.CheckInvariants();
  engine.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimEngineTest, ResetRestoresPristineState) {
  SimEngine engine;
  int fired = 0;
  engine.Schedule(1.0, [&] { ++fired; });
  engine.Schedule(2.0, [&] { ++fired; });
  const auto pending = engine.Schedule(9.0, [&] { ++fired; });
  engine.RunUntil(5.0);
  EXPECT_EQ(fired, 2);
  engine.Reset();
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  EXPECT_EQ(engine.pending_events(), 0u);
  EXPECT_EQ(engine.events_processed(), 0u);
  engine.CheckInvariants();
  engine.Cancel(pending);  // Id from before the reset: safe no-op.
  // The engine must be fully usable again from time zero.
  engine.Schedule(0.5, [&] { ++fired; });
  engine.Run();
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(engine.now(), 0.5);
}

}  // namespace
}  // namespace varuna
