// Golden tests for the blocked GEMM kernels (bit-identity against the seed
// naive loops across degenerate and non-multiple-of-block shapes) and unit
// tests for the TensorArena zero-allocation contract.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"
#include "src/tensor/tensor_arena.h"

namespace varuna {
namespace {

// Shapes chosen around the blocking parameters (KB=64, NB=128, dot JB=8):
// degenerate vectors, exact block multiples, one-off-the-block sizes, and
// remainder-heavy sizes that exercise every partial-panel path.
struct GemmShape {
  int m;
  int k;
  int n;
};

const std::vector<GemmShape>& TestShapes() {
  static const std::vector<GemmShape> shapes = {
      {1, 1, 1},    {1, 7, 1},    {1, 200, 1},  {200, 1, 1},  {1, 1, 200},
      {3, 64, 128}, {5, 65, 129}, {2, 63, 127}, {7, 1, 9},    {129, 3, 2},
      {17, 70, 140}, {33, 9, 8},  {4, 8, 16},   {130, 130, 3}, {8, 128, 256},
  };
  return shapes;
}

// Gaussian operand with exact zeros injected so the kernels' zero-skip branch
// (`if (aip == 0.0f) continue`) is exercised on both tiers.
Tensor MakeOperand(std::vector<int> shape, Rng* rng) {
  Tensor t = Tensor::Randn(shape, rng, 1.0f);
  for (int64_t i = 0; i < t.size(); i += 3) {
    t[i] = 0.0f;
  }
  return t;
}

class BlockedKernelGuard {
 public:
  BlockedKernelGuard() { SetGemmKernel(GemmKernel::kBlocked); }
  ~BlockedKernelGuard() { SetGemmKernel(GemmKernel::kBlocked); }
};

TEST(GemmGoldenTest, KernelSwitchRoundTrip) {
  BlockedKernelGuard guard;
  EXPECT_EQ(GetGemmKernel(), GemmKernel::kBlocked);
  SetGemmKernel(GemmKernel::kNaive);
  EXPECT_EQ(GetGemmKernel(), GemmKernel::kNaive);
  SetGemmKernel(GemmKernel::kBlocked);
  EXPECT_EQ(GetGemmKernel(), GemmKernel::kBlocked);
}

TEST(GemmGoldenTest, MatMulBitIdenticalToNaive) {
  BlockedKernelGuard guard;
  Rng rng(11);
  for (const GemmShape& s : TestShapes()) {
    const Tensor a = MakeOperand({s.m, s.k}, &rng);
    const Tensor b = MakeOperand({s.k, s.n}, &rng);
    const Tensor blocked = MatMul(a, b);
    const Tensor naive = MatMulNaive(a, b);
    EXPECT_TRUE(Identical(blocked, naive))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n
        << " max|diff|=" << MaxAbsDiff(blocked, naive);
  }
}

TEST(GemmGoldenTest, MatMulTransposeBBitIdenticalToNaive) {
  BlockedKernelGuard guard;
  Rng rng(12);
  for (const GemmShape& s : TestShapes()) {
    const Tensor a = MakeOperand({s.m, s.k}, &rng);
    const Tensor b = MakeOperand({s.n, s.k}, &rng);
    const Tensor blocked = MatMulTransposeB(a, b);
    const Tensor naive = MatMulTransposeBNaive(a, b);
    EXPECT_TRUE(Identical(blocked, naive))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n
        << " max|diff|=" << MaxAbsDiff(blocked, naive);
  }
}

TEST(GemmGoldenTest, MatMulTransposeABitIdenticalToNaive) {
  BlockedKernelGuard guard;
  Rng rng(13);
  for (const GemmShape& s : TestShapes()) {
    const Tensor a = MakeOperand({s.k, s.m}, &rng);
    const Tensor b = MakeOperand({s.k, s.n}, &rng);
    const Tensor blocked = MatMulTransposeA(a, b);
    const Tensor naive = MatMulTransposeANaive(a, b);
    EXPECT_TRUE(Identical(blocked, naive))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n
        << " max|diff|=" << MaxAbsDiff(blocked, naive);
  }
}

TEST(GemmGoldenTest, NaiveTierMatchesSeedThroughSwitch) {
  // Flipping the global switch to kNaive must route MatMul through the seed
  // loops — i.e. agree with MatMulNaive trivially and with blocked exactly.
  BlockedKernelGuard guard;
  Rng rng(14);
  const Tensor a = MakeOperand({9, 65}, &rng);
  const Tensor b = MakeOperand({65, 130}, &rng);
  const Tensor blocked = MatMul(a, b);
  SetGemmKernel(GemmKernel::kNaive);
  const Tensor switched = MatMul(a, b);
  EXPECT_TRUE(Identical(switched, MatMulNaive(a, b)));
  EXPECT_TRUE(Identical(switched, blocked));
}

TEST(GemmGoldenTest, IntoVariantsReuseOversizedBuffers) {
  // *Into into a tensor with larger capacity must reuse the buffer and still
  // be bit-identical (stale contents must not leak through Fill/overwrite).
  BlockedKernelGuard guard;
  Rng rng(15);
  const Tensor a = MakeOperand({5, 65}, &rng);
  const Tensor b = MakeOperand({65, 129}, &rng);
  Tensor out = Tensor::Randn({40, 200}, &rng, 1.0f);  // Bigger than [5,129].
  const int64_t capacity_before = out.capacity();
  MatMulInto(&out, a, b);
  EXPECT_EQ(out.capacity(), capacity_before);
  EXPECT_TRUE(Identical(out, MatMulNaive(a, b)));
}

TEST(TensorResizeTest, ResizeToKeepsCapacity) {
  Tensor t({10, 10});
  const int64_t capacity = t.capacity();
  t.ResizeTo({2, 3});
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.capacity(), capacity);
  t.ResizeTo({10, 10});
  EXPECT_EQ(t.capacity(), capacity);
}

TEST(TensorArenaTest, AcquireReleaseReusesSlot) {
  TensorArena arena;
  Tensor* t = arena.Acquire({4, 8});
  EXPECT_EQ(t->dim(0), 4);
  EXPECT_EQ(t->dim(1), 8);
  EXPECT_EQ(arena.slot_count(), 1);
  EXPECT_EQ(arena.live_count(), 1);
  const int64_t allocs = arena.heap_allocations();
  EXPECT_GE(allocs, 1);
  arena.Release(t);
  EXPECT_EQ(arena.live_count(), 0);
  // Same shape again: same slot, no new allocation.
  Tensor* again = arena.Acquire({4, 8});
  EXPECT_EQ(again, t);
  EXPECT_EQ(arena.slot_count(), 1);
  EXPECT_EQ(arena.heap_allocations(), allocs);
  arena.Release(again);
  // Smaller shape fits the existing buffer: still no allocation.
  Tensor* smaller = arena.Acquire({2, 2});
  EXPECT_EQ(arena.slot_count(), 1);
  EXPECT_EQ(arena.heap_allocations(), allocs);
  arena.Release(smaller);
}

TEST(TensorArenaTest, BestFitPrefersSmallestSufficientSlot) {
  TensorArena arena;
  Tensor* big = arena.Acquire({32, 32});
  Tensor* small = arena.Acquire({4, 4});
  arena.Release(big);
  arena.Release(small);
  const int64_t allocs = arena.heap_allocations();
  // A [3,3] request fits both free slots; best-fit must lease the small one.
  Tensor* leased = arena.Acquire({3, 3});
  EXPECT_EQ(leased, small);
  EXPECT_EQ(arena.heap_allocations(), allocs);
  arena.ReleaseAll();
  EXPECT_EQ(arena.live_count(), 0);
}

TEST(TensorArenaTest, DistinctLiveLeases) {
  TensorArena arena;
  Tensor* a = arena.Acquire({2, 2});
  Tensor* b = arena.Acquire({2, 2});
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.live_count(), 2);
  EXPECT_EQ(arena.slot_count(), 2);
  arena.Release(a);
  arena.Release(b);
}

TEST(TensorArenaTest, GrowthCountsAsAllocation) {
  TensorArena arena;
  Tensor* t = arena.Acquire({2, 2});
  arena.Release(t);
  const int64_t allocs = arena.heap_allocations();
  // Nothing free fits [64,64]: the arena must grow (or add) a slot and count
  // the heap allocation.
  Tensor* grown = arena.Acquire({64, 64});
  EXPECT_GT(arena.heap_allocations(), allocs);
  EXPECT_EQ(grown->size(), 64 * 64);
  arena.Release(grown);
  // Steady state after warmup: the grown buffer now serves both shapes.
  const int64_t warm = arena.heap_allocations();
  for (int i = 0; i < 10; ++i) {
    Tensor* lease = arena.Acquire(i % 2 == 0 ? std::vector<int>{64, 64}
                                             : std::vector<int>{2, 2});
    arena.Release(lease);
  }
  EXPECT_EQ(arena.heap_allocations(), warm);
}

}  // namespace
}  // namespace varuna
