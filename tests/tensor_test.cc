#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace varuna {
namespace {

TEST(TensorTest, ZerosAndShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(TensorTest, AtIndexing) {
  Tensor t({2, 3});
  t.at(1, 2) = 5.0f;
  EXPECT_EQ(t[5], 5.0f);
  EXPECT_EQ(t.at(1, 2), 5.0f);
}

TEST(TensorTest, RandnStatistics) {
  Rng rng(3);
  Tensor t = Tensor::Randn({100, 100}, &rng, 0.5f);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sum_sq += static_cast<double>(t[i]) * t[i];
  }
  EXPECT_NEAR(sum / t.size(), 0.0, 0.01);
  EXPECT_NEAR(std::sqrt(sum_sq / t.size()), 0.5, 0.01);
}

TEST(TensorTest, MatMulKnownValues) {
  Tensor a({2, 2});
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Tensor b({2, 2});
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  const Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 19);
  EXPECT_EQ(c.at(0, 1), 22);
  EXPECT_EQ(c.at(1, 0), 43);
  EXPECT_EQ(c.at(1, 1), 50);
}

TEST(TensorTest, TransposedMatMulsAgree) {
  Rng rng(9);
  const Tensor a = Tensor::Randn({4, 6}, &rng, 1.0f);
  const Tensor b = Tensor::Randn({6, 5}, &rng, 1.0f);
  const Tensor c = MatMul(a, b);
  // A * B == (A * B) via MatMulTransposeB with B^T materialised.
  Tensor bt({5, 6});
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 5; ++j) {
      bt.at(j, i) = b.at(i, j);
    }
  }
  EXPECT_LT(MaxAbsDiff(MatMulTransposeB(a, bt), c), 1e-5f);
  // A^T path.
  Tensor at({6, 4});
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 6; ++j) {
      at.at(j, i) = a.at(i, j);
    }
  }
  EXPECT_LT(MaxAbsDiff(MatMulTransposeA(at, b), c), 1e-5f);
}

TEST(TensorTest, RowSoftmaxSumsToOne) {
  Rng rng(4);
  const Tensor logits = Tensor::Randn({8, 16}, &rng, 3.0f);
  const Tensor probs = RowSoftmax(logits);
  for (int i = 0; i < 8; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < 16; ++j) {
      const float p = probs.at(i, j);
      EXPECT_GE(p, 0.0f);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(TensorTest, RowSoftmaxNumericallyStable) {
  Tensor logits({1, 3});
  logits.at(0, 0) = 10000.0f;
  logits.at(0, 1) = 9999.0f;
  logits.at(0, 2) = -10000.0f;
  const Tensor probs = RowSoftmax(logits);
  EXPECT_FALSE(std::isnan(probs.at(0, 0)));
  EXPECT_GT(probs.at(0, 0), probs.at(0, 1));
  EXPECT_NEAR(probs.at(0, 2), 0.0f, 1e-6f);
}

TEST(TensorTest, AxpyAndScale) {
  Tensor a({3});
  a.Fill(1.0f);
  Tensor b({3});
  b.Fill(2.0f);
  a.Axpy(0.5f, b);
  EXPECT_EQ(a[0], 2.0f);
  a.Scale(2.0f);
  EXPECT_EQ(a[2], 4.0f);
}

TEST(TensorTest, IdenticalAndMaxAbsDiff) {
  Rng rng(5);
  const Tensor a = Tensor::Randn({3, 3}, &rng, 1.0f);
  Tensor b = a;
  EXPECT_TRUE(Identical(a, b));
  b[4] += 0.25f;
  EXPECT_FALSE(Identical(a, b));
  EXPECT_NEAR(MaxAbsDiff(a, b), 0.25f, 1e-6f);
}

TEST(TensorTest, AddRowVector) {
  Tensor a({2, 2});
  Tensor row({2});
  row[0] = 1.0f;
  row[1] = 2.0f;
  const Tensor c = AddRowVector(a, row);
  EXPECT_EQ(c.at(0, 0), 1.0f);
  EXPECT_EQ(c.at(1, 1), 2.0f);
}

TEST(TensorTest, SquaredNorm) {
  Tensor a({2});
  a[0] = 3.0f;
  a[1] = 4.0f;
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 25.0);
}

}  // namespace
}  // namespace varuna
