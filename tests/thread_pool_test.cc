#include "src/common/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace varuna {
namespace {

// A pure function of the item index, matching the determinism contract: any
// per-item "randomness" must derive from the item, never from shared state.
uint64_t ItemValue(int item) {
  uint64_t x = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(item);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  return x;
}

TEST(ThreadPoolTest, RunsEveryItemExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kItems = 1000;
  std::vector<std::atomic<int>> runs(kItems);
  pool.ParallelFor(kItems, [&](int item, int /*worker*/) { runs[item].fetch_add(1); });
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "item " << i;
  }
}

TEST(ThreadPoolTest, WorkerIndicesStayInRange) {
  ThreadPool pool(3);
  ASSERT_EQ(pool.num_threads(), 3);
  std::atomic<bool> out_of_range{false};
  pool.ParallelFor(200, [&](int /*item*/, int worker) {
    if (worker < 0 || worker >= pool.num_threads()) {
      out_of_range = true;
    }
  });
  EXPECT_FALSE(out_of_range.load());
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int batch = 0; batch < 50; ++batch) {
    const int items = 1 + batch % 7;
    std::atomic<int> done{0};
    pool.ParallelFor(items, [&](int /*item*/, int /*worker*/) { done.fetch_add(1); });
    ASSERT_EQ(done.load(), items) << "batch " << batch;
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  bool all_inline = true;
  pool.ParallelFor(32, [&](int /*item*/, int worker) {
    all_inline = all_inline && worker == 0 && std::this_thread::get_id() == caller;
  });
  EXPECT_TRUE(all_inline);
}

TEST(ThreadPoolTest, ThreadCountClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  int calls = 0;
  pool.ParallelFor(5, [&](int /*item*/, int /*worker*/) { ++calls; });
  EXPECT_EQ(calls, 5);
}

TEST(ThreadPoolTest, ZeroItemsReturnsImmediately) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&](int, int) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ItemIndexedResultsIdenticalAcrossPoolSizes) {
  constexpr int kItems = 257;
  std::vector<uint64_t> reference(kItems);
  for (int i = 0; i < kItems; ++i) {
    reference[i] = ItemValue(i);
  }
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    std::vector<uint64_t> results(kItems, 0);
    pool.ParallelFor(kItems, [&](int item, int /*worker*/) { results[item] = ItemValue(item); });
    EXPECT_EQ(results, reference) << "pool size " << threads;
  }
}

TEST(ThreadPoolTest, PerWorkerScratchNeverAliases) {
  ThreadPool pool(4);
  // One scratch slot per worker, as ConfigSearch keys its simulators. If two
  // workers ever shared an index concurrently, the final tally would drift
  // (and TSan would flag the unsynchronised scratch writes).
  std::vector<uint64_t> scratch(static_cast<size_t>(pool.num_threads()), 0);
  constexpr int kItems = 4000;
  pool.ParallelFor(kItems, [&](int /*item*/, int worker) {
    scratch[static_cast<size_t>(worker)] += 1;
  });
  const uint64_t total = std::accumulate(scratch.begin(), scratch.end(), uint64_t{0});
  EXPECT_EQ(total, static_cast<uint64_t>(kItems));
}

TEST(ThreadPoolTest, StressManySmallBatches) {
  ThreadPool pool(ThreadPool::DefaultThreadCount() > 1 ? ThreadPool::DefaultThreadCount() : 4);
  std::atomic<uint64_t> sum{0};
  uint64_t expected = 0;
  for (int batch = 0; batch < 300; ++batch) {
    const int items = batch % 5;  // Includes empty batches between full ones.
    for (int i = 0; i < items; ++i) {
      expected += ItemValue(i);
    }
    pool.ParallelFor(items,
                     [&](int item, int /*worker*/) { sum.fetch_add(ItemValue(item)); });
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace varuna
