// Pooled-equals-serial and zero-allocation contracts of the training fast
// path: TrainStep (any math_threads) must reproduce the seed ForwardBackward
// bit for bit, the pooled pipeline trainer must match its serial self, and
// steady-state TrainStep must not touch the allocator for tensor buffers.
// Runs under the `threaded` ctest label so TSan sees the pooled paths.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/optimizer.h"
#include "src/nn/synthetic_task.h"
#include "src/train/trainers.h"

namespace varuna {
namespace {

constexpr int kVocab = 13;
constexpr int kWidth = 20;
constexpr int kBlocks = 4;
constexpr int kBatch = 24;
constexpr int kMicrobatch = 4;

std::unique_ptr<Sequential> FreshModel() {
  Rng rng(7);
  return BuildBlockModel(kVocab, kWidth, kBlocks, &rng);
}

Batch MakeBatch(int rows) {
  MarkovTask task(kVocab, 21);
  Rng rng(5);
  return task.Sample(rows, &rng);
}

std::vector<Tensor> SnapshotGrads(const std::vector<Tensor*>& grads) {
  std::vector<Tensor> snapshot;
  snapshot.reserve(grads.size());
  for (const Tensor* grad : grads) {
    snapshot.push_back(*grad);
  }
  return snapshot;
}

void ExpectIdenticalGrads(const std::vector<Tensor>& a, const std::vector<Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(Identical(a[i], b[i]))
        << "gradient " << i << " diverged, max|diff|=" << MaxAbsDiff(a[i], b[i]);
  }
}

TEST(TrainParallelTest, TrainStepMatchesForwardBackwardSerial) {
  const Batch batch = MakeBatch(kBatch);
  ReferenceTrainer seed(FreshModel());
  ReferenceTrainer fast(FreshModel());
  seed.model()->ZeroGradients();
  const double seed_loss = seed.ForwardBackward(batch, kMicrobatch);
  fast.model()->ZeroGradients();
  const double fast_loss = fast.TrainStep(batch, kMicrobatch);
  EXPECT_EQ(seed_loss, fast_loss);
  ExpectIdenticalGrads(SnapshotGrads(seed.Gradients()), SnapshotGrads(fast.Gradients()));
}

TEST(TrainParallelTest, PooledTrainStepBitIdenticalToSerial) {
  const Batch batch = MakeBatch(kBatch);
  ReferenceTrainer serial(FreshModel(), MathOptions{1});
  ReferenceTrainer pooled(FreshModel(), MathOptions{4});
  for (int step = 0; step < 3; ++step) {
    serial.model()->ZeroGradients();
    pooled.model()->ZeroGradients();
    const double serial_loss = serial.TrainStep(batch, kMicrobatch);
    const double pooled_loss = pooled.TrainStep(batch, kMicrobatch);
    EXPECT_EQ(serial_loss, pooled_loss) << "step " << step;
    ExpectIdenticalGrads(SnapshotGrads(serial.Gradients()),
                         SnapshotGrads(pooled.Gradients()));
  }
}

TEST(TrainParallelTest, PooledTrainStepMatchesSeedPathAcrossOptimizerSteps) {
  // Full training trajectory equivalence: parameters updated by an optimizer
  // between steps must stay bit-identical between the seed path and the
  // pooled fast path.
  const Batch batch = MakeBatch(kBatch);
  ReferenceTrainer seed(FreshModel());
  ReferenceTrainer pooled(FreshModel(), MathOptions{3});
  SgdOptimizer seed_opt(seed.Parameters(), seed.Gradients(), 0.05f, 0.9f);
  SgdOptimizer pooled_opt(pooled.Parameters(), pooled.Gradients(), 0.05f, 0.9f);
  for (int step = 0; step < 4; ++step) {
    seed_opt.ZeroGradients();
    pooled_opt.ZeroGradients();
    const double seed_loss = seed.ForwardBackward(batch, kMicrobatch);
    const double pooled_loss = pooled.TrainStep(batch, kMicrobatch);
    EXPECT_EQ(seed_loss, pooled_loss) << "step " << step;
    seed_opt.Step();
    pooled_opt.Step();
  }
  const std::vector<Tensor> seed_params = SnapshotGrads(seed.Parameters());
  const std::vector<Tensor> pooled_params = SnapshotGrads(pooled.Parameters());
  ExpectIdenticalGrads(seed_params, pooled_params);
}

TEST(TrainParallelTest, TrainStepZeroAllocSteadyState) {
  const Batch batch = MakeBatch(kBatch);
  ReferenceTrainer trainer(FreshModel(), MathOptions{2});
  SgdOptimizer optimizer(trainer.Parameters(), trainer.Gradients(), 0.05f, 0.9f);
  // Warmup: first steps build replicas, grad slots, and arena buffers.
  for (int step = 0; step < 2; ++step) {
    optimizer.ZeroGradients();
    trainer.TrainStep(batch, kMicrobatch);
    optimizer.Step();
  }
  const int64_t warm = trainer.heap_allocations();
  for (int step = 0; step < 5; ++step) {
    optimizer.ZeroGradients();
    trainer.TrainStep(batch, kMicrobatch);
    optimizer.Step();
    EXPECT_EQ(trainer.heap_allocations(), warm)
        << "steady-state TrainStep allocated tensor buffers at step " << step;
  }
}

TEST(TrainParallelTest, PipelinePooledBitIdenticalToSerialAndReference) {
  const Batch batch = MakeBatch(kBatch);
  const std::vector<int> cuts = {0, 2, 4, kBlocks + 2};
  ReferenceTrainer reference(FreshModel());
  SyncPipelineTrainer serial(FreshModel(), cuts, MathOptions{1});
  SyncPipelineTrainer pooled(FreshModel(), cuts, MathOptions{4});
  for (int step = 0; step < 2; ++step) {
    reference.model()->ZeroGradients();
    for (int s = 0; s < serial.depth(); ++s) {
      serial.stage(s)->ZeroGradients();
      pooled.stage(s)->ZeroGradients();
    }
    const double reference_loss = reference.ForwardBackward(batch, kMicrobatch);
    const double serial_loss = serial.ForwardBackward(batch, kMicrobatch);
    const double pooled_loss = pooled.ForwardBackward(batch, kMicrobatch);
    EXPECT_EQ(serial_loss, pooled_loss) << "step " << step;
    EXPECT_DOUBLE_EQ(reference_loss, serial_loss) << "step " << step;
    ExpectIdenticalGrads(SnapshotGrads(serial.Gradients()),
                         SnapshotGrads(pooled.Gradients()));
    ExpectIdenticalGrads(SnapshotGrads(reference.Gradients()),
                         SnapshotGrads(serial.Gradients()));
  }
}

TEST(TrainParallelTest, StaleTrainerZeroStalenessStillMatchesSyncPooled) {
  // StaleGradientTrainer now rides the pooled fast path; staleness 0 must
  // remain plain synchronous SGD regardless of thread count.
  const Batch batch = MakeBatch(kBatch);
  StaleGradientTrainer serial(FreshModel(), /*staleness=*/0, 0.05f, 0.9f, MathOptions{1});
  StaleGradientTrainer pooled(FreshModel(), /*staleness=*/0, 0.05f, 0.9f, MathOptions{4});
  for (int step = 0; step < 3; ++step) {
    EXPECT_EQ(serial.Step(batch), pooled.Step(batch)) << "step " << step;
  }
}

}  // namespace
}  // namespace varuna
