#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/nn/optimizer.h"
#include "src/nn/synthetic_task.h"
#include "src/train/trainers.h"

namespace varuna {
namespace {

constexpr int kVocab = 12;
constexpr int kWidth = 16;
constexpr int kBlocks = 6;

std::unique_ptr<Sequential> FreshModel(uint64_t seed) {
  Rng rng(seed);
  return BuildBlockModel(kVocab, kWidth, kBlocks, &rng);
}

TEST(SplitIntoMicrobatchesTest, PreservesRowsAndTargets) {
  MarkovTask task(kVocab, 1);
  Rng rng(2);
  const Batch batch = task.Sample(12, &rng);
  const auto microbatches = SplitIntoMicrobatches(batch, 4);
  ASSERT_EQ(microbatches.size(), 3u);
  for (int m = 0; m < 3; ++m) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(microbatches[static_cast<size_t>(m)].targets[static_cast<size_t>(i)],
                batch.targets[static_cast<size_t>(m * 4 + i)]);
      for (int j = 0; j < kVocab; ++j) {
        EXPECT_EQ(microbatches[static_cast<size_t>(m)].inputs.at(i, j),
                  batch.inputs.at(m * 4 + i, j));
      }
    }
  }
}

// The central correctness-preserving claim (§4.2): the pipeline-partitioned,
// micro-batched, recompute-based execution produces gradients *identical* to
// single-device execution.
class GradientEquivalenceTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GradientEquivalenceTest, PipelineMatchesReferenceExactly) {
  const int depth = std::get<0>(GetParam());
  const int microbatch = std::get<1>(GetParam());
  MarkovTask task(kVocab, 5);
  Rng data_rng(77);
  const Batch batch = task.Sample(24, &data_rng);

  ReferenceTrainer reference(FreshModel(42));
  // Split layers evenly: model has kBlocks+2 layers.
  std::vector<int> stage_begin;
  const int layers = kBlocks + 2;
  for (int s = 0; s <= depth; ++s) {
    stage_begin.push_back(s * layers / depth);
  }
  SyncPipelineTrainer pipeline(FreshModel(42), stage_begin);

  const double ref_loss = reference.ForwardBackward(batch, microbatch);
  const double pipe_loss = pipeline.ForwardBackward(batch, microbatch);
  EXPECT_DOUBLE_EQ(ref_loss, pipe_loss);

  const auto ref_grads = reference.Gradients();
  const auto pipe_grads = pipeline.Gradients();
  ASSERT_EQ(ref_grads.size(), pipe_grads.size());
  for (size_t i = 0; i < ref_grads.size(); ++i) {
    EXPECT_TRUE(Identical(*ref_grads[i], *pipe_grads[i])) << "grad " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, GradientEquivalenceTest,
                         ::testing::Values(std::make_tuple(2, 4), std::make_tuple(2, 12),
                                           std::make_tuple(4, 4), std::make_tuple(4, 2),
                                           std::make_tuple(8, 3), std::make_tuple(1, 6)),
                         [](const auto& param_info) {
                           return "P" + std::to_string(std::get<0>(param_info.param)) + "m" +
                                  std::to_string(std::get<1>(param_info.param));
                         });

TEST(SyncPipelineTrainerTest, TrainingConvergesLikeReference) {
  MarkovTask task(kVocab, 9);
  Rng data_rng(3);
  ReferenceTrainer reference(FreshModel(21));
  SyncPipelineTrainer pipeline(FreshModel(21), {0, 3, 6, kBlocks + 2});
  AdamOptimizer ref_opt(reference.Parameters(), reference.Gradients(), 3e-3f);
  AdamOptimizer pipe_opt(pipeline.Parameters(), pipeline.Gradients(), 3e-3f);
  Rng data_rng2(3);  // Identical data stream for both.
  double ref_loss = 0.0;
  double pipe_loss = 0.0;
  for (int step = 0; step < 60; ++step) {
    const Batch batch = task.Sample(16, &data_rng);
    const Batch batch2 = batch;
    ref_opt.ZeroGradients();
    ref_loss = reference.ForwardBackward(batch, 4);
    ref_opt.Step();
    pipe_opt.ZeroGradients();
    pipe_loss = pipeline.ForwardBackward(batch2, 4);
    pipe_opt.Step();
  }
  // Same data, same init, same semantics -> same trajectory.
  EXPECT_DOUBLE_EQ(ref_loss, pipe_loss);
}

TEST(SyncPipelineTrainerTest, StashBoundedAndFreed) {
  MarkovTask task(kVocab, 4);
  Rng rng(6);
  const Batch batch = task.Sample(32, &rng);
  SyncPipelineTrainer pipeline(FreshModel(11), {0, 2, 4, 6, kBlocks + 2});
  pipeline.ForwardBackward(batch, 2);  // 16 micro-batches, 4 stages.
  EXPECT_LE(pipeline.peak_stash_slots(), 16);
  EXPECT_GE(pipeline.peak_stash_slots(), 4);
}

TEST(SyncPipelineTrainerTest, ForwardMatchesReferenceInference) {
  Rng rng(13);
  MarkovTask task(kVocab, 2);
  const Batch batch = task.Sample(8, &rng);
  ReferenceTrainer reference(FreshModel(99));
  SyncPipelineTrainer pipeline(FreshModel(99), {0, 4, kBlocks + 2});
  EXPECT_TRUE(Identical(reference.model()->Forward(batch.inputs), pipeline.Forward(batch.inputs)));
}

TEST(GlobalNormTest, SyncedClipMatchesReference) {
  MarkovTask task(kVocab, 8);
  Rng rng(21);
  const Batch batch = task.Sample(16, &rng);

  ReferenceTrainer reference(FreshModel(33));
  reference.ForwardBackward(batch, 4);
  // Reference global clip.
  double total_sq = 0.0;
  for (Tensor* grad : reference.Gradients()) {
    total_sq += grad->SquaredNorm();
  }
  const double global_norm = std::sqrt(total_sq);
  const float max_norm = static_cast<float>(global_norm / 2.0);  // Force clipping.
  for (Tensor* grad : reference.Gradients()) {
    grad->Scale(static_cast<float>(max_norm / global_norm));
  }

  SyncPipelineTrainer synced(FreshModel(33), {0, 4, kBlocks + 2});
  synced.ForwardBackward(batch, 4);
  const double synced_norm = synced.ClipByGlobalNorm(max_norm, /*sync_across_stages=*/true);
  EXPECT_NEAR(synced_norm, global_norm, 1e-6 * global_norm);

  const auto ref_grads = reference.Gradients();
  const auto sync_grads = synced.Gradients();
  for (size_t i = 0; i < ref_grads.size(); ++i) {
    EXPECT_LT(MaxAbsDiff(*ref_grads[i], *sync_grads[i]), 1e-7f);
  }

  // The unsynchronized variant (what the tracer prevents) clips wrongly.
  SyncPipelineTrainer unsynced(FreshModel(33), {0, 4, kBlocks + 2});
  unsynced.ForwardBackward(batch, 4);
  unsynced.ClipByGlobalNorm(max_norm, /*sync_across_stages=*/false);
  float max_divergence = 0.0f;
  const auto unsync_grads = unsynced.Gradients();
  for (size_t i = 0; i < ref_grads.size(); ++i) {
    max_divergence = std::max(max_divergence, MaxAbsDiff(*ref_grads[i], *unsync_grads[i]));
  }
  EXPECT_GT(max_divergence, 1e-4f);
}

TEST(CheckpointRestoreTest, MorphAcrossDepthsPreservesTrajectory) {
  // §4.5: per-layer checkpoints let the morphing framework resume with a
  // different mapping of layers to stages. Train at depth 2, checkpoint,
  // restore into a depth-4 trainer, continue — the final weights must match
  // an uninterrupted run bit for bit.
  MarkovTask task(kVocab, 17);
  const int layers = kBlocks + 2;

  // Uninterrupted reference: 12 steps at depth 2.
  Rng data_rng_a(51);
  SyncPipelineTrainer uninterrupted(FreshModel(88), {0, 4, layers});
  AdamOptimizer opt_a(uninterrupted.Parameters(), uninterrupted.Gradients(), 3e-3f);
  for (int step = 0; step < 12; ++step) {
    const Batch batch = task.Sample(16, &data_rng_a);
    opt_a.ZeroGradients();
    uninterrupted.ForwardBackward(batch, 4);
    opt_a.Step();
  }

  // Morphed run: 6 steps at depth 2, checkpoint, restore at depth 4, 6 more.
  Rng data_rng_b(51);
  SyncPipelineTrainer before(FreshModel(88), {0, 4, layers});
  AdamOptimizer opt_b(before.Parameters(), before.Gradients(), 3e-3f);
  for (int step = 0; step < 6; ++step) {
    const Batch batch = task.Sample(16, &data_rng_b);
    opt_b.ZeroGradients();
    before.ForwardBackward(batch, 4);
    opt_b.Step();
  }
  const ParameterCheckpoint checkpoint = SnapshotParameters(before.Parameters(), opt_b);

  SyncPipelineTrainer after(FreshModel(123) /* different init, overwritten */,
                            {0, 2, 4, 6, layers});
  AdamOptimizer opt_c(after.Parameters(), after.Gradients(), 3e-3f);
  RestoreParameters(checkpoint, after.Parameters(), &opt_c);
  for (int step = 0; step < 6; ++step) {
    const Batch batch = task.Sample(16, &data_rng_b);
    opt_c.ZeroGradients();
    after.ForwardBackward(batch, 4);
    opt_c.Step();
  }

  const auto expected = uninterrupted.Parameters();
  const auto restored = after.Parameters();
  ASSERT_EQ(expected.size(), restored.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(Identical(*expected[i], *restored[i])) << "param " << i;
  }
}

TEST(CheckpointRestoreTest, SgdVelocityRoundTrips) {
  MarkovTask task(kVocab, 4);
  Rng rng(2);
  const Batch batch = task.Sample(8, &rng);
  ReferenceTrainer trainer(FreshModel(9));
  SgdOptimizer sgd(trainer.Parameters(), trainer.Gradients(), 0.05f, 0.9f);
  trainer.ForwardBackward(batch, 4);
  sgd.Step();
  const ParameterCheckpoint checkpoint = SnapshotParameters(trainer.Parameters(), sgd);

  ReferenceTrainer other(FreshModel(10));
  SgdOptimizer sgd2(other.Parameters(), other.Gradients(), 0.05f, 0.9f);
  RestoreParameters(checkpoint, other.Parameters(), &sgd2);
  const auto a = trainer.Parameters();
  const auto b = other.Parameters();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(Identical(*a[i], *b[i]));
  }
}

TEST(StaleGradientTrainerTest, ZeroStalenessMatchesSync) {
  MarkovTask task(kVocab, 3);
  Rng data_rng(15);
  StaleGradientTrainer fresh(FreshModel(55), 0, 0.05f, 0.9f);
  Rng data_rng2(15);
  // Manual sync SGD on identical model/data.
  auto model = FreshModel(55);
  SgdOptimizer sgd(model->Parameters(), model->Gradients(), 0.05f, 0.9f);
  SoftmaxCrossEntropy loss;
  for (int step = 0; step < 20; ++step) {
    const Batch batch = task.Sample(16, &data_rng);
    const Batch batch2 = task.Sample(16, &data_rng2);
    fresh.Step(batch);
    sgd.ZeroGradients();
    loss.Loss(model->Forward(batch2.inputs), batch2.targets);
    model->Backward(loss.Backward());
    sgd.Step();
  }
  const auto a = fresh.model()->Parameters();
  const auto b = model->Parameters();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(Identical(*a[i], *b[i]));
  }
}

TEST(StaleGradientTrainerTest, StalenessDestabilizesAtHighLearningRate) {
  // Figure 10: the same hyper-parameters that converge synchronously diverge
  // with pipeline-induced gradient staleness.
  MarkovTask task(kVocab, 6);
  const float lr = 0.1f;
  const float momentum = 0.9f;

  auto run = [&](int staleness) {
    Rng data_rng(31);
    StaleGradientTrainer trainer(FreshModel(77), staleness, lr, momentum);
    double last = 0.0;
    for (int step = 0; step < 400; ++step) {
      last = trainer.Step(task.Sample(32, &data_rng));
      if (std::isnan(last) || last > 1e3) {
        return 1e9;  // Diverged hard.
      }
    }
    return last;
  };

  const double sync_loss = run(0);
  const double stale_loss = run(6);
  EXPECT_LT(sync_loss, 2.0);              // Converges.
  EXPECT_GT(stale_loss, sync_loss + 1.0); // Blows up or stalls high.
}

}  // namespace
}  // namespace varuna
