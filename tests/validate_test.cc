#include <gtest/gtest.h>

#include <string>

#include "src/pipeline/schedule.h"
#include "src/pipeline/validate.h"

namespace varuna {
namespace {

// --- Positive sweep: every generator output validates --------------------
// Pins Figure-4 semantics across the whole (kind, depth, m) grid the
// subsystems actually use.

class ValidateSweepTest : public ::testing::TestWithParam<ScheduleKind> {};

TEST_P(ValidateSweepTest, GeneratedSchedulesSatisfyInvariants) {
  for (const int depth : {1, 2, 4, 8}) {
    for (const int microbatches : {1, 3, 8}) {
      const Schedule schedule = GenerateSchedule(GetParam(), depth, microbatches);
      const ScheduleValidation validation = ValidateSchedule(schedule);
      EXPECT_TRUE(validation.ok())
          << ToString(GetParam()) << " depth=" << depth << " m=" << microbatches << "\n"
          << validation.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, ValidateSweepTest,
                         ::testing::Values(ScheduleKind::kVaruna, ScheduleKind::kGpipe,
                                           ScheduleKind::kOneFOneB, ScheduleKind::kDeepSpeed),
                         [](const ::testing::TestParamInfo<ScheduleKind>& param_info) {
                           return ToString(param_info.param);
                         });

// --- Negative tests: corrupted schedules are rejected ---------------------

// Expects at least one violation whose text contains `needle`.
void ExpectRejected(const Schedule& schedule, const std::string& needle) {
  const ScheduleValidation validation = ValidateSchedule(schedule);
  ASSERT_FALSE(validation.ok()) << "corruption not detected (wanted: " << needle << ")";
  EXPECT_NE(validation.ToString().find(needle), std::string::npos)
      << "violations:\n"
      << validation.ToString();
}

TEST(ValidateNegativeTest, ShapeMismatchRejected) {
  Schedule schedule = GenerateSchedule(ScheduleKind::kVaruna, 4, 3);
  schedule.ops.pop_back();
  ExpectRejected(schedule, "stages");
}

TEST(ValidateNegativeTest, MissingBackwardRejected) {
  Schedule schedule = GenerateSchedule(ScheduleKind::kGpipe, 2, 3);
  auto& ops = schedule.ops[0];
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].type == PipeOpType::kBackward) {
      ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  ExpectRejected(schedule, "backward missing");
}

TEST(ValidateNegativeTest, DuplicatedForwardRejected) {
  Schedule schedule = GenerateSchedule(ScheduleKind::kGpipe, 2, 3);
  schedule.ops[1].push_back(PipeOp{PipeOpType::kForward, 2});
  ExpectRejected(schedule, "forward duplicated");
}

TEST(ValidateNegativeTest, BackwardBeforeForwardRejected) {
  Schedule schedule = GenerateSchedule(ScheduleKind::kVaruna, 2, 3);
  // Swap the last stage's F(0),B(0) pair so the backward runs first.
  std::swap(schedule.ops[1][0], schedule.ops[1][1]);
  ExpectRejected(schedule, "after backward");
}

TEST(ValidateNegativeTest, RecomputeAfterBackwardRejected) {
  Schedule schedule = GenerateSchedule(ScheduleKind::kOneFOneB, 2, 3);
  auto& ops = schedule.ops[0];
  // Move the first recompute behind its backward.
  for (size_t i = 0; i + 1 < ops.size(); ++i) {
    if (ops[i].type == PipeOpType::kRecompute) {
      std::swap(ops[i], ops[i + 1]);
      break;
    }
  }
  ExpectRejected(schedule, "recompute");
}

TEST(ValidateNegativeTest, LastStageRecomputeRejected) {
  Schedule schedule = GenerateSchedule(ScheduleKind::kVaruna, 3, 3);
  auto& ops = schedule.ops[2];
  // Insert a recompute before the final backward on the last stage.
  ops.insert(ops.end() - 1, PipeOp{PipeOpType::kRecompute, 2});
  ExpectRejected(schedule, "forbidden");
}

TEST(ValidateNegativeTest, GpipeForwardAfterBackwardRejected) {
  Schedule schedule = GenerateSchedule(ScheduleKind::kGpipe, 2, 3);
  auto& ops = schedule.ops[0];
  // Move the final forward to the end of the op list (into the drain phase),
  // leaving multiset completeness intact.
  PipeOp moved{PipeOpType::kForward, 2};
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i] == moved) {
      ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  ops.push_back(moved);
  ExpectRejected(schedule, "all forwards first");
}

TEST(ValidateNegativeTest, GpipeFifoDrainRejected) {
  Schedule schedule = GenerateSchedule(ScheduleKind::kGpipe, 1, 2);
  // Rebuild stage 0 draining FIFO instead of LIFO: F0 F1 R0 B0 B1 — B1 should
  // have run before B0 (and without recomputing B1's evicted activations).
  schedule.ops[0] = {PipeOp{PipeOpType::kForward, 0}, PipeOp{PipeOpType::kForward, 1},
                     PipeOp{PipeOpType::kRecompute, 0}, PipeOp{PipeOpType::kBackward, 0},
                     PipeOp{PipeOpType::kBackward, 1}};
  ExpectRejected(schedule, "LIFO");
}

TEST(ValidateNegativeTest, OneFOneBWarmupTooShortRejected) {
  Schedule schedule = GenerateSchedule(ScheduleKind::kOneFOneB, 4, 8);
  // Delay stage 0's last warmup forward until after the first backward pair;
  // forwards stay in ascending order but the warmup is now one short.
  auto& ops = schedule.ops[0];
  const PipeOp warmup_f = ops[3];
  ASSERT_EQ(warmup_f.type, PipeOpType::kForward);
  ops.erase(ops.begin() + 3);
  ops.insert(ops.begin() + 5, warmup_f);
  ExpectRejected(schedule, "warmup");
}

TEST(ValidateNegativeTest, DeepSpeedParityBreakRejected) {
  Schedule schedule = GenerateSchedule(ScheduleKind::kDeepSpeed, 2, 3);
  // Two forward-slots in a row break the even/odd grid.
  auto& ops = schedule.ops[0];
  ops.insert(ops.begin() + 1, PipeOp{PipeOpType::kIdleForward, -1});
  ExpectRejected(schedule, "slot");
}

TEST(ValidateNegativeTest, IdleOpOutsideDeepSpeedRejected) {
  Schedule schedule = GenerateSchedule(ScheduleKind::kVaruna, 2, 2);
  schedule.ops[0].push_back(PipeOp{PipeOpType::kIdleForward, -1});
  ExpectRejected(schedule, "idle op");
}

TEST(ValidateNegativeTest, MicrobatchOutOfRangeRejected) {
  Schedule schedule = GenerateSchedule(ScheduleKind::kGpipe, 1, 2);
  schedule.ops[0][0].microbatch = 7;
  ExpectRejected(schedule, "out of range");
}

TEST(ValidateNegativeTest, ReportsAllViolations) {
  // A thoroughly corrupted schedule yields one violation per defect, not just
  // the first.
  Schedule schedule = GenerateSchedule(ScheduleKind::kVaruna, 2, 2);
  schedule.ops[0].push_back(PipeOp{PipeOpType::kIdleForward, -1});
  schedule.ops[1].push_back(PipeOp{PipeOpType::kForward, 0});
  const ScheduleValidation validation = ValidateSchedule(schedule);
  EXPECT_GE(validation.violations.size(), 2u) << validation.ToString();
}

}  // namespace
}  // namespace varuna
