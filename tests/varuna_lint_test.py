#!/usr/bin/env python3
"""Regression tests for tools/varuna_lint.py, focused on the stripper blind
spots this file exists to pin down: raw string literals, escaped quotes and
backslash continuations at end-of-line, and block comments — none of which a
naive per-line scan handles. Invoked from ctest (label `lint`)."""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "tools"))
import varuna_lint  # noqa: E402

strip = varuna_lint.strip_comments_and_strings
fresh = varuna_lint.fresh_strip_state


def strip_lines(lines):
    """Strips a whole file's lines with shared cross-line state."""
    state = fresh()
    return [strip(line, state) for line in lines]


class StripTest(unittest.TestCase):
    def test_plain_string_and_line_comment(self):
        self.assertEqual(strip('x = "rand()"; // rand()'), 'x = ""; ')

    def test_escaped_quote_inside_string(self):
        self.assertEqual(strip(r'f("say \"rand()\" now"); g();'), 'f(""); g();')

    def test_double_backslash_then_close_quote(self):
        # The \\ pair must not swallow the closing quote: g() is real code.
        self.assertEqual(strip(r'f("tail\\"); g();'), 'f(""); g();')

    def test_raw_string_on_one_line(self):
        self.assertEqual(strip('s = R"(std::random_device "x" rand())"; h();'),
                         's = R""; h();')

    def test_raw_string_custom_delimiter(self):
        # The )" inside the body does not close a )delim"-delimited literal.
        self.assertEqual(strip('s = R"doc(a )" rand() b)doc"; h();'), 's = R""; h();')

    def test_raw_string_prefixes(self):
        for prefix in ("u8R", "uR", "UR", "LR"):
            self.assertEqual(strip('s = %s"(rand())"; h();' % prefix),
                             's = %s""; h();' % prefix)

    def test_identifier_ending_in_r_is_not_raw_prefix(self):
        # `matcher"..."` (a UDL-ish token) must not trigger raw-string parsing.
        self.assertEqual(strip('auto x = matcher"(abc)"; rand();'),
                         'auto x = matcher""; rand();')

    def test_raw_string_spanning_lines(self):
        code = strip_lines(['s = R"(first rand()',
                            'std::random_device mid',
                            ')" ; tail();'])
        self.assertEqual(code[0], 's = R"')
        self.assertEqual(code[1], '')
        self.assertEqual(code[2], '" ; tail();')

    def test_string_continued_with_backslash_newline(self):
        # The second physical line is still inside the literal: its text must
        # not surface as code, and the code after the close quote must.
        code = strip_lines(['s = "begin \\', 'std::random_device end"; tail();'])
        self.assertEqual(code[0], 's = "')
        self.assertEqual(code[1], '"; tail();')

    def test_line_comment_continued_with_backslash(self):
        code = strip_lines(['// comment continues \\', 'rand(); still comment \\',
                            'rand(); also comment', 'real();'])
        self.assertEqual(code[1], '')
        self.assertEqual(code[2], '')
        self.assertEqual(code[3], 'real();')

    def test_block_comment_spanning_lines(self):
        code = strip_lines(['a(); /* rand()', 'std::random_device', '*/ b();'])
        self.assertEqual(code[0], 'a(); ')
        self.assertEqual(code[1], '')
        self.assertEqual(code[2], ' b();')

    def test_block_comment_marker_inside_string(self):
        # A /* inside a string literal must not open a comment.
        code = strip_lines(['s = "/*"; a();', 'b();'])
        self.assertEqual(code[0], 's = ""; a();')
        self.assertEqual(code[1], 'b();')

    def test_char_literal(self):
        self.assertEqual(strip("c = '\\''; d();"), "c = ''; d();")


class LintFileTest(unittest.TestCase):
    """End-to-end: the determinism rule over files exercising the stripper."""

    def lint(self, name, text):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, name)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(text)
            linter = varuna_lint.Linter(tmp)
            linter.lint_file(path)
            return linter.violations

    def test_raw_string_hazard_text_is_not_a_violation(self):
        violations = self.lint("src/x.cc", '\n'.join([
            'const char* kDoc = R"doc(',
            '  std::random_device rd;',
            '  srand(42); time(NULL);',
            '  #include <chrono>',
            ')doc";',
            '']))
        self.assertEqual(violations, [])

    def test_continued_string_hazard_text_is_not_a_violation(self):
        violations = self.lint("src/x.cc", '\n'.join([
            'const char* s = "part one \\',
            'std::random_device part two";',
            '']))
        self.assertEqual(violations, [])

    def test_real_violation_after_raw_string_is_still_caught(self):
        violations = self.lint("src/x.cc", '\n'.join([
            'const char* kDoc = R"(text)";',
            'int x = rand();',
            '']))
        self.assertEqual(len(violations), 1)
        self.assertIn("determinism", violations[0])
        self.assertIn(":2:", violations[0])

    def test_determinism_rule_covers_tests_and_bench(self):
        for rel in ("tests/t.cc", "bench/b.cc"):
            violations = self.lint(rel, "#include <chrono>\n")
            self.assertEqual(len(violations), 1, rel)
            self.assertIn("determinism", violations[0])

    def test_bench_util_timing_allowlist(self):
        self.assertIn("bench/bench_util.h", varuna_lint.TIMING_ALLOW_FILES)

    def test_check_macro_rule_covers_tests(self):
        violations = self.lint("tests/t.cc", "void f() { assert(1 == 1); }\n")
        self.assertEqual(len(violations), 1)
        self.assertIn("check-macro", violations[0])


if __name__ == "__main__":
    unittest.main()
