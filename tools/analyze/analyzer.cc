#include "tools/analyze/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace varuna {
namespace analyze {
namespace {

// Comments indexed by physical line, for suppression lookups.
class SuppressionIndex {
 public:
  explicit SuppressionIndex(const LexedFile& file) {
    for (const Token& token : file.tokens) {
      if (token.kind == TokKind::kComment) comments_[token.line].push_back(&token.text);
    }
  }

  bool Allows(int line, const std::string& rule) const {
    auto it = comments_.find(line);
    if (it == comments_.end()) return false;
    for (const std::string* text : it->second) {
      if (CommentAllows(*text, rule)) return true;
    }
    return false;
  }

 private:
  std::map<int, std::vector<const std::string*>> comments_;
};

// The token stream with comments filtered out (suppressions and
// classification tags are read from the full stream separately).
std::vector<const Token*> CodeTokens(const LexedFile& file) {
  std::vector<const Token*> code;
  code.reserve(file.tokens.size());
  for (const Token& token : file.tokens) {
    if (token.kind != TokKind::kComment) code.push_back(&token);
  }
  return code;
}

bool IsPunct(const Token* t, const char* text) {
  return t->kind == TokKind::kPunct && t->text == text;
}
bool IsIdent(const Token* t, const char* text) {
  return t->kind == TokKind::kIdent && t->text == text;
}

void Report(std::vector<Finding>* findings, const std::string& rel, int line,
            const std::string& rule, const std::string& message) {
  findings->push_back(Finding{rel, line, rule, message});
}

// ---------------------------------------------------------------------------
// Pass 1: include graph
// ---------------------------------------------------------------------------

struct IncludeEdge {
  size_t file_index;
  int line;
  std::string target;  // repo-relative, e.g. "src/manager/elastic_trainer.h"
};

std::vector<IncludeEdge> ExtractIncludes(const std::vector<LexedFile>& files) {
  std::vector<IncludeEdge> edges;
  for (size_t f = 0; f < files.size(); ++f) {
    const std::vector<const Token*> code = CodeTokens(files[f]);
    for (size_t i = 0; i + 2 < code.size(); ++i) {
      if (!IsPunct(code[i], "#") || !IsIdent(code[i + 1], "include")) continue;
      const Token* target = code[i + 2];
      if (target->kind != TokKind::kString || target->text.size() < 2) continue;
      std::string path = target->text.substr(1, target->text.size() - 2);
      if (path.rfind("src/", 0) != 0) continue;
      edges.push_back(IncludeEdge{f, target->line, std::move(path)});
    }
  }
  return edges;
}

void CheckCycles(const std::vector<LexedFile>& files, const std::vector<IncludeEdge>& edges,
                 const std::vector<SuppressionIndex>& suppressions,
                 std::vector<Finding>* findings) {
  // File-level graph over repo-relative paths. Targets outside the analyzed
  // set become leaf nodes.
  std::map<std::string, std::vector<const IncludeEdge*>> graph;
  for (const IncludeEdge& edge : edges) {
    if (suppressions[edge.file_index].Allows(edge.line, "include-cycle")) continue;
    graph[files[edge.file_index].rel].push_back(&edge);
  }
  // Iterative DFS with tri-state marks; reports each back-edge once.
  std::map<std::string, int> state;  // 0 unseen / 1 on stack / 2 done
  std::vector<std::string> stack;
  struct Frame {
    std::string node;
    size_t next = 0;
  };
  for (const auto& [start, unused] : graph) {
    (void)unused;
    if (state[start] != 0) continue;
    std::vector<Frame> frames{{start, 0}};
    state[start] = 1;
    stack.push_back(start);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const auto it = graph.find(frame.node);
      const size_t degree = it == graph.end() ? 0 : it->second.size();
      if (frame.next >= degree) {
        state[frame.node] = 2;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const IncludeEdge* edge = it->second[frame.next++];
      const int mark = state[edge->target];
      if (mark == 1) {
        std::ostringstream path;
        const auto at = std::find(stack.begin(), stack.end(), edge->target);
        for (auto p = at; p != stack.end(); ++p) path << *p << " -> ";
        path << edge->target;
        Report(findings, files[edge->file_index].rel, edge->line, "include-cycle",
               "include cycle: " + path.str());
      } else if (mark == 0) {
        state[edge->target] = 1;
        stack.push_back(edge->target);
        frames.push_back(Frame{edge->target, 0});
      }
    }
  }
}

}  // namespace

std::string FormatFinding(const Finding& finding) {
  std::ostringstream out;
  out << finding.rel << ":" << finding.line << ": [" << finding.rule << "] " << finding.message;
  return out.str();
}

bool ParseLayeringSpec(const std::string& text, LayeringSpec* spec, std::string* error) {
  spec->layers.clear();
  spec->layer_of.clear();
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream words(line);
    std::vector<std::string> layer;
    std::string module;
    while (words >> module) {
      if (spec->layer_of.count(module) != 0) {
        *error = "layering spec: module '" + module + "' listed twice";
        return false;
      }
      spec->layer_of[module] = static_cast<int>(spec->layers.size());
      layer.push_back(module);
    }
    if (!layer.empty()) spec->layers.push_back(std::move(layer));
  }
  if (spec->layers.empty()) {
    *error = "layering spec: no layers defined";
    return false;
  }
  return true;
}

std::string ModuleOf(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return "";
  const size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return "";
  return rel.substr(4, slash - 4);
}

void CheckIncludeGraph(const std::vector<LexedFile>& files, const LayeringSpec& spec,
                       std::vector<Finding>* findings) {
  std::vector<SuppressionIndex> suppressions;
  suppressions.reserve(files.size());
  for (const LexedFile& file : files) suppressions.emplace_back(file);

  const std::vector<IncludeEdge> edges = ExtractIncludes(files);
  std::set<std::string> unlisted_reported;
  for (const IncludeEdge& edge : edges) {
    const LexedFile& file = files[edge.file_index];
    if (suppressions[edge.file_index].Allows(edge.line, "layering")) continue;
    const std::string from = ModuleOf(file.rel);
    const std::string to = ModuleOf(edge.target);
    if (from.empty() || to.empty() || from == to) continue;
    const auto from_it = spec.layer_of.find(from);
    const auto to_it = spec.layer_of.find(to);
    if (from_it == spec.layer_of.end()) {
      if (unlisted_reported.insert(from).second) {
        Report(findings, file.rel, edge.line, "layering",
               "module 'src/" + from + "' is not in the layering spec; add it to "
               "tools/analyze/layering.txt deliberately");
      }
      continue;
    }
    if (to_it == spec.layer_of.end()) {
      if (unlisted_reported.insert(to).second) {
        Report(findings, file.rel, edge.line, "layering",
               "included module 'src/" + to + "' is not in the layering spec; add it to "
               "tools/analyze/layering.txt deliberately");
      }
      continue;
    }
    if (to_it->second >= from_it->second) {
      std::ostringstream msg;
      msg << "layering violation: src/" << from << " (layer " << from_it->second
          << ") must not include src/" << to << " (layer " << to_it->second
          << "); only strictly lower layers are visible";
      Report(findings, file.rel, edge.line, "layering", msg.str());
    }
  }
  CheckCycles(files, edges, suppressions, findings);
}

// ---------------------------------------------------------------------------
// Pass 2: Rng stream discipline
// ---------------------------------------------------------------------------

namespace {

bool IsDrawMethod(const std::string& name) {
  // Keep in sync with src/common/rng.h. Fork() counts: it advances the
  // stream, so calling it on a copy/temporary has the same hazard.
  static const std::set<std::string> kDraws = {
      "NextUint64", "NextDouble", "UniformInt",     "Uniform", "Gaussian",
      "Exponential", "Bernoulli", "LogNormalMedian", "Fork",
  };
  return kDraws.count(name) != 0;
}

// Finds the index of the matching close for the open bracket at `open`
// (code[open] must be "(" or "{"). Returns code.size() when unterminated.
size_t MatchForward(const std::vector<const Token*>& code, size_t open, const char* open_text,
                    const char* close_text) {
  int depth = 0;
  for (size_t i = open; i < code.size(); ++i) {
    if (IsPunct(code[i], open_text)) ++depth;
    if (IsPunct(code[i], close_text) && --depth == 0) return i;
  }
  return code.size();
}

// `Rng name = <init> ;` where the initializer contains neither a call nor
// Fork: a plain copy of an existing stream.
void CheckRngCopies(const LexedFile& file, const std::vector<const Token*>& code,
                    const SuppressionIndex& suppressions, std::vector<Finding>* findings) {
  for (size_t i = 0; i + 3 < code.size(); ++i) {
    if (!IsIdent(code[i], "Rng") || code[i + 1]->kind != TokKind::kIdent ||
        !IsPunct(code[i + 2], "=")) {
      continue;
    }
    bool has_call = false;
    bool has_fork = false;
    size_t j = i + 3;
    for (; j < code.size() && !IsPunct(code[j], ";"); ++j) {
      if (IsPunct(code[j], "(")) has_call = true;
      if (IsIdent(code[j], "Fork")) has_fork = true;
    }
    if (j == i + 3 || has_fork || has_call) continue;
    if (suppressions.Allows(code[i]->line, "rng-copy")) continue;
    Report(findings, file.rel, code[i]->line, "rng-copy",
           "'Rng " + code[i + 1]->text + " = ...' copies an existing draw stream; fork "
           "deliberately with .Fork() or seed a new Rng");
  }
}

// Draws on a by-value Rng parameter inside the function definition: the
// caller's stream does not advance, so the same values replay elsewhere.
void CheckRngValueParams(const LexedFile& file, const std::vector<const Token*>& code,
                         const SuppressionIndex& suppressions, std::vector<Finding>* findings) {
  for (size_t i = 1; i + 2 < code.size(); ++i) {
    if (!IsIdent(code[i], "Rng")) continue;
    if (!IsPunct(code[i - 1], "(") && !IsPunct(code[i - 1], ",")) continue;
    if (code[i + 1]->kind != TokKind::kIdent) continue;
    const Token* after = code[i + 2];
    if (!IsPunct(after, ",") && !IsPunct(after, ")") && !IsPunct(after, "=")) continue;
    const std::string& name = code[i + 1]->text;

    // Close of the parameter list: we are one level deep at the parameter.
    int depth = 1;
    size_t close = code.size();
    for (size_t j = i + 2; j < code.size(); ++j) {
      if (IsPunct(code[j], "(")) ++depth;
      if (IsPunct(code[j], ")") && --depth == 0) {
        close = j;
        break;
      }
    }
    if (close == code.size()) continue;

    // Definition? Scan past the init list / qualifiers for `{` before `;`.
    size_t body_open = code.size();
    int paren = 0;
    for (size_t j = close + 1; j < code.size(); ++j) {
      if (IsPunct(code[j], "(")) ++paren;
      if (IsPunct(code[j], ")")) --paren;
      if (paren > 0) continue;
      if (IsPunct(code[j], ";")) break;  // declaration only
      if (IsPunct(code[j], "{")) {
        body_open = j;
        break;
      }
    }
    if (body_open == code.size()) continue;
    const size_t body_close = MatchForward(code, body_open, "{", "}");

    // Draws anywhere from the parameter-list close (member-init lists
    // included) to the end of the body.
    for (size_t j = close + 1; j + 2 < body_close; ++j) {
      if (!IsIdent(code[j], name.c_str()) || !IsPunct(code[j + 1], ".")) continue;
      if (code[j + 2]->kind != TokKind::kIdent || !IsDrawMethod(code[j + 2]->text)) continue;
      if (suppressions.Allows(code[j]->line, "rng-value-param")) continue;
      Report(findings, file.rel, code[j]->line, "rng-value-param",
             "." + code[j + 2]->text + "() on by-value Rng parameter '" + name +
                 "' forks the stream (the caller's Rng does not advance); take Rng* "
                 "or store the Rng and draw from the stored copy");
    }
  }
}

// Draws chained onto an unnamed temporary: `Rng(seed).NextDouble()`. The
// stream lives for one expression, so its draws are position-dependent copies
// of whatever the seed expression happens to be.
void CheckRngTemporaries(const LexedFile& file, const std::vector<const Token*>& code,
                         const SuppressionIndex& suppressions, std::vector<Finding>* findings) {
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    if (!IsIdent(code[i], "Rng") || !IsPunct(code[i + 1], "(")) continue;
    const size_t close = MatchForward(code, i + 1, "(", ")");
    if (close + 2 >= code.size()) continue;
    if (!IsPunct(code[close + 1], ".")) continue;
    if (code[close + 2]->kind != TokKind::kIdent || !IsDrawMethod(code[close + 2]->text)) {
      continue;
    }
    if (suppressions.Allows(code[i]->line, "rng-temp")) continue;
    Report(findings, file.rel, code[i]->line, "rng-temp",
           "." + code[close + 2]->text + "() on an unnamed Rng temporary is a draw outside "
           "any seeded scope; name the Rng and thread it from the scenario seed");
  }
}

}  // namespace

void CheckRngDiscipline(const LexedFile& file, std::vector<Finding>* findings) {
  const SuppressionIndex suppressions(file);
  const std::vector<const Token*> code = CodeTokens(file);
  CheckRngCopies(file, code, suppressions, findings);
  CheckRngValueParams(file, code, suppressions, findings);
  CheckRngTemporaries(file, code, suppressions, findings);
}

// ---------------------------------------------------------------------------
// Pass 3: fingerprint coverage
// ---------------------------------------------------------------------------

namespace {

enum class StatsTag { kNone, kFingerprint, kObservability, kConflict };

// A comment classifies a field when, after the comment markers, it *starts*
// with the tag word — prose like "never fingerprinted" does not classify.
StatsTag TagOfComment(const std::string& comment) {
  size_t i = 0;
  if (comment.rfind("//", 0) == 0 || comment.rfind("/*", 0) == 0) i = 2;
  while (i < comment.size() && (comment[i] == ' ' || comment[i] == '-')) ++i;
  auto word_at = [&](const char* word) {
    const size_t n = std::string(word).size();
    if (comment.compare(i, n, word) != 0) return false;
    const char next = i + n < comment.size() ? comment[i + n] : ' ';
    return next == ' ' || next == ':' || next == '.' || next == ',' || next == '*';
  };
  if (word_at("fingerprint")) return StatsTag::kFingerprint;
  if (word_at("observability")) return StatsTag::kObservability;
  return StatsTag::kNone;
}

StatsTag Merge(StatsTag a, StatsTag b) {
  if (b == StatsTag::kNone) return a;
  if (a == StatsTag::kNone) return b;
  return a == b ? a : StatsTag::kConflict;
}

struct StatsField {
  std::string name;
  int line = 0;
  StatsTag tag = StatsTag::kNone;
};

// Parses `struct SessionStats { ... };` out of the full token stream
// (comments included — they carry the classifications). Returns false when
// the struct is missing.
bool ParseSessionStats(const LexedFile& file, std::vector<StatsField>* fields) {
  const std::vector<Token>& toks = file.tokens;
  size_t open = toks.size();
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdent && toks[i].text == "struct" &&
        toks[i + 1].kind == TokKind::kIdent && toks[i + 1].text == "SessionStats" &&
        toks[i + 2].kind == TokKind::kPunct && toks[i + 2].text == "{") {
      open = i + 2;
      break;
    }
  }
  if (open == toks.size()) return false;

  int brace = 1;
  StatsTag pending = StatsTag::kNone;  // leading comment tag for the next decl
  int trailing_line = -1;              // line whose comments belong to the previous decl
  std::vector<const Token*> decl;
  for (size_t i = open + 1; i < toks.size() && brace > 0; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kComment) {
      if (t.line == trailing_line) continue;  // already consumed as a trailing tag
      pending = Merge(pending, TagOfComment(t.text));
      continue;
    }
    if (t.kind == TokKind::kPunct && t.text == "{") ++brace;
    if (t.kind == TokKind::kPunct && t.text == "}") {
      --brace;
      if (brace == 0) break;
    }
    if (!(t.kind == TokKind::kPunct && t.text == ";") || brace > 1) {
      decl.push_back(&t);
      continue;
    }
    // End of a depth-1 declaration. Trailing tag comments live on the
    // semicolon's physical line, after it in the stream.
    StatsTag tag = pending;
    for (size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::kComment) break;
      if (toks[j].line != t.line) break;
      tag = Merge(tag, TagOfComment(toks[j].text));
    }
    pending = StatsTag::kNone;
    trailing_line = t.line;

    // Field name: last identifier before the first top-level `=` or `{`.
    bool is_function = false;
    const Token* name = nullptr;
    for (const Token* d : decl) {
      if (d->kind == TokKind::kPunct && (d->text == "=" || d->text == "{")) break;
      if (d->kind == TokKind::kPunct && d->text == "(") {
        is_function = true;
        break;
      }
      if (d->kind == TokKind::kIdent) name = d;
    }
    const bool is_alias = !decl.empty() && decl[0]->kind == TokKind::kIdent &&
                          (decl[0]->text == "using" || decl[0]->text == "typedef" ||
                           decl[0]->text == "static");
    if (name != nullptr && !is_function && !is_alias) {
      fields->push_back(StatsField{name->text, name->line, tag});
    }
    decl.clear();
  }
  return true;
}

}  // namespace

void CheckFingerprintCoverage(const LexedFile& stats_header, const LexedFile& serializer,
                              std::vector<Finding>* findings) {
  std::vector<StatsField> fields;
  if (!ParseSessionStats(stats_header, &fields)) {
    Report(findings, stats_header.rel, 1, "fingerprint-coverage",
           "no `struct SessionStats { ... }` found");
    return;
  }
  const SuppressionIndex header_suppressions(stats_header);
  const SuppressionIndex serializer_suppressions(serializer);

  // Every `stats.<field>` read in the serializer.
  std::map<std::string, int> serialized;  // field -> first line
  const std::vector<const Token*> code = CodeTokens(serializer);
  for (size_t i = 0; i + 2 < code.size(); ++i) {
    if (!IsIdent(code[i], "stats") || !IsPunct(code[i + 1], ".")) continue;
    if (code[i + 2]->kind != TokKind::kIdent) continue;
    serialized.emplace(code[i + 2]->text, code[i + 2]->line);
  }

  std::set<std::string> known;
  for (const StatsField& field : fields) {
    known.insert(field.name);
    if (header_suppressions.Allows(field.line, "fingerprint-coverage")) continue;
    switch (field.tag) {
      case StatsTag::kNone:
        Report(findings, stats_header.rel, field.line, "fingerprint-coverage",
               "SessionStats field '" + field.name + "' is unclassified; tag it "
               "// fingerprint (replay contract) or // observability (reporting only)");
        break;
      case StatsTag::kConflict:
        Report(findings, stats_header.rel, field.line, "fingerprint-coverage",
               "SessionStats field '" + field.name + "' is tagged both fingerprint "
               "and observability");
        break;
      case StatsTag::kFingerprint:
        if (serialized.count(field.name) == 0) {
          Report(findings, stats_header.rel, field.line, "fingerprint-coverage",
                 "field '" + field.name + "' is tagged // fingerprint but " +
                     serializer.rel + " never reads stats." + field.name +
                     "; the replay contract would silently miss it");
        }
        break;
      case StatsTag::kObservability:
        if (serialized.count(field.name) != 0) {
          Report(findings, stats_header.rel, field.line, "fingerprint-coverage",
                 "field '" + field.name + "' is tagged // observability but " +
                     serializer.rel + " serializes stats." + field.name +
                     "; retag it // fingerprint or drop it from the trace");
        }
        break;
    }
  }
  for (const auto& [name, line] : serialized) {
    if (known.count(name) != 0) continue;
    if (serializer_suppressions.Allows(line, "fingerprint-coverage")) continue;
    Report(findings, serializer.rel, line, "fingerprint-coverage",
           "stats." + name + " is serialized but is not a SessionStats field "
           "(stale after a rename?)");
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool HasSourceExtension(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

}  // namespace

int RunAnalysis(const AnalyzerOptions& options, std::vector<Finding>* findings,
                std::string* error) {
  namespace fs = std::filesystem;
  const fs::path root(options.root);

  std::string layering_text;
  if (!ReadFile((root / options.layering_rel).string(), &layering_text)) {
    *error = "cannot read layering spec: " + (root / options.layering_rel).string();
    return 2;
  }
  LayeringSpec spec;
  if (!ParseLayeringSpec(layering_text, &spec, error)) return 2;

  std::vector<std::string> rels;
  for (const std::string& scan : options.roots) {
    const fs::path base = root / scan;
    std::error_code ec;
    if (fs::is_regular_file(base, ec)) {
      rels.push_back(fs::path(scan).generic_string());
      continue;
    }
    if (!fs::is_directory(base, ec)) {
      *error = "no such scan root: " + base.string();
      return 2;
    }
    for (fs::recursive_directory_iterator it(base, ec), end; it != end; it.increment(ec)) {
      if (ec) break;
      const fs::path& p = it->path();
      const std::string name = p.filename().string();
      if (it->is_directory() && (name.rfind("build", 0) == 0 || name[0] == '.')) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && HasSourceExtension(p)) {
        rels.push_back(fs::relative(p, root).generic_string());
      }
    }
  }
  std::sort(rels.begin(), rels.end());
  rels.erase(std::unique(rels.begin(), rels.end()), rels.end());

  std::vector<LexedFile> files;
  files.reserve(rels.size());
  for (const std::string& rel : rels) {
    std::string text;
    const std::string path = (root / rel).string();
    if (!ReadFile(path, &text)) {
      *error = "cannot read " + path;
      return 2;
    }
    files.push_back(Lex(path, rel, text));
  }

  CheckIncludeGraph(files, spec, findings);
  for (const LexedFile& file : files) {
    if (file.rel.rfind("src/", 0) == 0) CheckRngDiscipline(file, findings);
  }

  const LexedFile* stats_header = nullptr;
  const LexedFile* serializer = nullptr;
  for (const LexedFile& file : files) {
    if (file.rel == options.stats_header_rel) stats_header = &file;
    if (file.rel == options.serializer_rel) serializer = &file;
  }
  std::string text;
  std::vector<LexedFile> extra;  // contract files outside the scan roots
  extra.reserve(2);
  if (stats_header == nullptr) {
    const std::string path = (root / options.stats_header_rel).string();
    if (!ReadFile(path, &text)) {
      *error = "cannot read stats header: " + path;
      return 2;
    }
    extra.push_back(Lex(path, options.stats_header_rel, text));
    stats_header = &extra.back();
  }
  if (serializer == nullptr) {
    const std::string path = (root / options.serializer_rel).string();
    if (!ReadFile(path, &text)) {
      *error = "cannot read serializer: " + path;
      return 2;
    }
    extra.push_back(Lex(path, options.serializer_rel, text));
    serializer = &extra.back();
  }
  CheckFingerprintCoverage(*stats_header, *serializer, findings);

  std::sort(findings->begin(), findings->end(), [](const Finding& a, const Finding& b) {
    if (a.rel != b.rel) return a.rel < b.rel;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return findings->empty() ? 0 : 1;
}

}  // namespace analyze
}  // namespace varuna
