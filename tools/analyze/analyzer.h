// varuna-analyze passes: semantic checks on the lexed token stream.
//
// Three hazard classes that the line-oriented varuna_lint.py regexes cannot
// see, each defending a piece of the bit-identical-replay contract:
//
//   layering / include-cycle
//     The #include DAG over the src/ modules must match the checked-in
//     layering spec (tools/analyze/layering.txt): a module may include only
//     modules in strictly lower layers (and itself). Back-edges couple the
//     hot simulation path to policy layers; cycles are rejected outright.
//
//   rng-copy / rng-value-param / rng-temp
//     Every stochastic draw flows through one seeded varuna::Rng tree,
//     forked only via Rng::Fork(). A copied Rng silently duplicates a draw
//     stream: two sites replay identical "random" values and the caller's
//     stream stops advancing, which breaks replay the first time either
//     site changes. Flagged: copy-initialisation from an existing Rng
//     (rng-copy), draws on a by-value Rng parameter (rng-value-param;
//     passing Rng by value as a *sink* that only stores it is fine), and
//     draws on an unnamed Rng temporary (rng-temp).
//
//   fingerprint-coverage
//     Every SessionStats field must be classified with a `// fingerprint`
//     or `// observability` comment, cross-checked against the serializer
//     (src/varuna/determinism.cc): fingerprint-tagged fields must be read
//     as `stats.<field>` there, observability-tagged fields must not, and
//     no serialized name may be unknown. State can never silently join or
//     leave the replay contract.
//
// Any finding can be suppressed on its line with
// `// varuna-analyze: allow(<rule>)`.
#ifndef TOOLS_ANALYZE_ANALYZER_H_
#define TOOLS_ANALYZE_ANALYZER_H_

#include <map>
#include <string>
#include <vector>

#include "tools/analyze/lexer.h"

namespace varuna {
namespace analyze {

struct Finding {
  std::string rel;
  int line = 0;
  std::string rule;
  std::string message;
};

std::string FormatFinding(const Finding& finding);

// Layering spec: one layer per line, lowest layer first, modules separated by
// whitespace; `#` starts a comment. A module may include modules in strictly
// lower layers and itself; everything under src/ must be listed.
struct LayeringSpec {
  std::vector<std::vector<std::string>> layers;
  std::map<std::string, int> layer_of;
};

bool ParseLayeringSpec(const std::string& text, LayeringSpec* spec, std::string* error);

// Module of a repo-relative path: "src/sim/engine.h" -> "sim"; empty when the
// path is not of the form src/<module>/...
std::string ModuleOf(const std::string& rel);

// Pass 1: layering conformance + file-level include-cycle detection over all
// `#include "src/..."` edges in `files`.
void CheckIncludeGraph(const std::vector<LexedFile>& files, const LayeringSpec& spec,
                       std::vector<Finding>* findings);

// Pass 2: Rng stream discipline within one file.
void CheckRngDiscipline(const LexedFile& file, std::vector<Finding>* findings);

// Pass 3: SessionStats classification vs. the serializer, as described above.
void CheckFingerprintCoverage(const LexedFile& stats_header, const LexedFile& serializer,
                              std::vector<Finding>* findings);

struct AnalyzerOptions {
  std::string root;                                // repo root (absolute or cwd-relative)
  std::vector<std::string> roots = {"src"};        // scan roots, relative to `root`
  std::string layering_rel = "tools/analyze/layering.txt";
  std::string stats_header_rel = "src/manager/elastic_trainer.h";
  std::string serializer_rel = "src/varuna/determinism.cc";
};

// Runs every pass over the tree. Returns 0 clean, 1 findings, 2 on a
// configuration error (unreadable spec / missing contract files), with
// `error` set in the latter case.
int RunAnalysis(const AnalyzerOptions& options, std::vector<Finding>* findings,
                std::string* error);

}  // namespace analyze
}  // namespace varuna

#endif  // TOOLS_ANALYZE_ANALYZER_H_
