#include "tools/analyze/lexer.h"

#include <cctype>
#include <cstddef>

namespace varuna {
namespace analyze {
namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Phase 1: splice backslash-newline continuations into a logical character
// stream while remembering each logical character's physical line.
void Splice(const std::string& text, std::string* logical, std::vector<int>* line_of) {
  int line = 1;
  for (size_t i = 0; i < text.size();) {
    if (text[i] == '\\') {
      if (i + 1 < text.size() && text[i + 1] == '\n') {
        i += 2;
        ++line;
        continue;
      }
      if (i + 2 < text.size() && text[i + 1] == '\r' && text[i + 2] == '\n') {
        i += 3;
        ++line;
        continue;
      }
    }
    logical->push_back(text[i]);
    line_of->push_back(line);
    if (text[i] == '\n') ++line;
    ++i;
  }
}

class Lexer {
 public:
  Lexer(const std::string& s, const std::vector<int>& line_of, std::vector<Token>* out)
      : s_(s), line_of_(line_of), out_(out) {}

  void Run() {
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
        ++i_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '"') {
        LexString(i_);
        continue;
      }
      if (c == '\'') {
        LexCharLit(i_);
        continue;
      }
      if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        LexNumber();
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdentOrPrefixedLiteral();
        continue;
      }
      if (c == '<' && AfterHashInclude()) {
        LexHeaderName();
        continue;
      }
      Emit(TokKind::kPunct, std::string(1, c), i_);
      ++i_;
    }
  }

 private:
  char Peek(size_t ahead) const { return i_ + ahead < s_.size() ? s_[i_ + ahead] : '\0'; }
  int LineAt(size_t pos) const {
    if (line_of_.empty()) return 1;
    return line_of_[pos < line_of_.size() ? pos : line_of_.size() - 1];
  }

  void Emit(TokKind kind, std::string text, size_t start) {
    out_->push_back(Token{kind, std::move(text), LineAt(start)});
  }

  void LexLineComment() {
    const size_t start = i_;
    while (i_ < s_.size() && s_[i_] != '\n') ++i_;
    Emit(TokKind::kComment, s_.substr(start, i_ - start), start);
  }

  void LexBlockComment() {
    const size_t start = i_;
    i_ += 2;
    while (i_ < s_.size() && !(s_[i_] == '*' && Peek(1) == '/')) ++i_;
    if (i_ < s_.size()) i_ += 2;  // past "*/" (unterminated: closed at EOF)
    Emit(TokKind::kComment, s_.substr(start, i_ - start), start);
  }

  // Ordinary string starting at the '"' under i_; `start` is where the token
  // began (the prefix, for u8"..."-style literals).
  void LexString(size_t start) {
    ++i_;  // opening quote
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\' && i_ + 1 < s_.size()) ++i_;
      ++i_;
    }
    if (i_ < s_.size()) ++i_;  // closing quote
    Emit(TokKind::kString, s_.substr(start, i_ - start), start);
  }

  void LexCharLit(size_t start) {
    ++i_;
    while (i_ < s_.size() && s_[i_] != '\'') {
      if (s_[i_] == '\\' && i_ + 1 < s_.size()) ++i_;
      ++i_;
    }
    if (i_ < s_.size()) ++i_;
    Emit(TokKind::kChar, s_.substr(start, i_ - start), start);
  }

  // R"delim( ... )delim" — the body is uninterpreted, including quotes,
  // backslashes, and newlines. `start` covers any encoding prefix.
  void LexRawString(size_t start) {
    ++i_;  // opening quote
    std::string delim;
    while (i_ < s_.size() && s_[i_] != '(') delim.push_back(s_[i_++]);
    if (i_ < s_.size()) ++i_;  // '('
    const std::string close = ")" + delim + "\"";
    const size_t end = s_.find(close, i_);
    i_ = end == std::string::npos ? s_.size() : end + close.size();
    Emit(TokKind::kRawString, s_.substr(start, i_ - start), start);
  }

  void LexNumber() {
    const size_t start = i_;
    // pp-number: digits, identifier chars, '.', exponent signs, and digit
    // separators (a quote between two alphanumerics).
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (IsIdentChar(c) || c == '.') {
        ++i_;
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') && i_ < s_.size() &&
            (s_[i_] == '+' || s_[i_] == '-')) {
          ++i_;
        }
        continue;
      }
      if (c == '\'' && i_ > start && IsIdentChar(s_[i_ - 1]) && IsIdentChar(Peek(1))) {
        i_ += 2;
        continue;
      }
      break;
    }
    Emit(TokKind::kNumber, s_.substr(start, i_ - start), start);
  }

  void LexIdentOrPrefixedLiteral() {
    const size_t start = i_;
    while (i_ < s_.size() && IsIdentChar(s_[i_])) ++i_;
    const std::string ident = s_.substr(start, i_ - start);
    if (i_ < s_.size() && s_[i_] == '"') {
      if (ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" || ident == "LR") {
        LexRawString(start);
        return;
      }
      if (ident == "u8" || ident == "u" || ident == "U" || ident == "L") {
        LexString(start);
        return;
      }
    }
    if (i_ < s_.size() && s_[i_] == '\'' &&
        (ident == "u8" || ident == "u" || ident == "U" || ident == "L")) {
      LexCharLit(start);
      return;
    }
    Emit(TokKind::kIdent, ident, start);
  }

  // True when the last two non-comment tokens are `#` `include`, i.e. the `<`
  // under the cursor opens a header-name, not a less-than.
  bool AfterHashInclude() const {
    const Token* last = nullptr;
    const Token* prev = nullptr;
    for (size_t k = out_->size(); k-- > 0;) {
      const Token& t = (*out_)[k];
      if (t.kind == TokKind::kComment) continue;
      if (last == nullptr) {
        last = &t;
      } else {
        prev = &t;
        break;
      }
    }
    return last != nullptr && prev != nullptr && last->kind == TokKind::kIdent &&
           last->text == "include" && prev->kind == TokKind::kPunct && prev->text == "#";
  }

  void LexHeaderName() {
    const size_t start = i_;
    while (i_ < s_.size() && s_[i_] != '>' && s_[i_] != '\n') ++i_;
    if (i_ < s_.size() && s_[i_] == '>') ++i_;
    Emit(TokKind::kHeader, s_.substr(start, i_ - start), start);
  }

  const std::string& s_;
  const std::vector<int>& line_of_;
  std::vector<Token>* out_;
  size_t i_ = 0;
};

}  // namespace

LexedFile Lex(std::string path, std::string rel, const std::string& text) {
  LexedFile file;
  file.path = std::move(path);
  file.rel = std::move(rel);
  std::string logical;
  std::vector<int> line_of;
  logical.reserve(text.size());
  line_of.reserve(text.size());
  Splice(text, &logical, &line_of);
  Lexer lexer(logical, line_of, &file.tokens);
  lexer.Run();
  return file;
}

bool CommentAllows(const std::string& comment, const std::string& rule) {
  const std::string needle = "varuna-analyze:";
  const size_t at = comment.find(needle);
  if (at == std::string::npos) return false;
  size_t i = at + needle.size();
  while (i < comment.size() && comment[i] == ' ') ++i;
  const std::string allow = "allow(";
  if (comment.compare(i, allow.size(), allow) != 0) return false;
  i += allow.size();
  const size_t end = comment.find(')', i);
  if (end == std::string::npos) return false;
  return comment.substr(i, end - i) == rule;
}

}  // namespace analyze
}  // namespace varuna
