// varuna-analyze lexer: a real (if minimal) C++ tokenizer, so the semantic
// passes never mistake comment or string-literal text for code — the exact
// blind spot the line-oriented tools/varuna_lint.py regexes have.
//
// Handled faithfully:
//   * line continuations (backslash-newline splicing, line numbers preserved),
//   * // and /* */ comments (retained as kComment tokens: the passes read
//     classification tags and `// varuna-analyze: allow(<rule>)` suppressions),
//   * string/char literals with escapes, encoding prefixes (u8, u, U, L),
//   * raw string literals R"delim(...)delim", including multi-line bodies,
//   * pp-numbers with digit separators (1'000'000),
//   * <header> names after `#include`.
//
// Not a preprocessor: macros are not expanded and conditional groups are all
// lexed. That is deliberate — the passes check the text the reviewer reads.
#ifndef TOOLS_ANALYZE_LEXER_H_
#define TOOLS_ANALYZE_LEXER_H_

#include <string>
#include <vector>

namespace varuna {
namespace analyze {

enum class TokKind {
  kIdent,
  kNumber,
  kString,     // ordinary string literal, prefix included in text
  kRawString,  // raw string literal, full text including delimiters
  kChar,       // character literal
  kPunct,      // single punctuation character
  kComment,    // // or /* */ comment, full text including the markers
  kHeader,     // <...> header-name after #include
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based physical line of the token's first character
};

struct LexedFile {
  std::string path;  // as opened (absolute or cwd-relative)
  std::string rel;   // repo-relative with forward slashes, e.g. "src/sim/engine.h"
  std::vector<Token> tokens;
};

// Tokenizes `text`. Never fails: unterminated literals/comments are closed at
// end-of-file (the checks should still see the rest of a slightly-broken file).
LexedFile Lex(std::string path, std::string rel, const std::string& text);

// True when `comment` (a kComment token text) carries a
// `varuna-analyze: allow(<rule>)` suppression for `rule`.
bool CommentAllows(const std::string& comment, const std::string& rule);

}  // namespace analyze
}  // namespace varuna

#endif  // TOOLS_ANALYZE_LEXER_H_
