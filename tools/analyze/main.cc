// varuna_analyze: semantic static analysis for the Varuna tree.
//
//   varuna_analyze [--root DIR] [--layering REL] [--stats-header REL]
//                  [--serializer REL] [scan-roots...]
//
// Scan roots default to `src`; REL paths are relative to --root (default the
// current directory). Exit status: 0 clean, 1 findings, 2 usage/config error.
//
// Runs in CI under the ctest label `lint` (tools/analyze/CMakeLists.txt), so
// every leg checks layering, Rng stream discipline, and fingerprint coverage
// on the exact tree it builds.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tools/analyze/analyzer.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--layering REL] [--stats-header REL] "
               "[--serializer REL] [scan-roots...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  varuna::analyze::AnalyzerOptions options;
  options.root = ".";
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    if (arg == "--root") {
      if (!value(&options.root)) return Usage(argv[0]);
    } else if (arg == "--layering") {
      if (!value(&options.layering_rel)) return Usage(argv[0]);
    } else if (arg == "--stats-header") {
      if (!value(&options.stats_header_rel)) return Usage(argv[0]);
    } else if (arg == "--serializer") {
      if (!value(&options.serializer_rel)) return Usage(argv[0]);
    } else if (arg.rfind("--", 0) == 0) {
      return Usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }
  if (!roots.empty()) options.roots = std::move(roots);

  std::vector<varuna::analyze::Finding> findings;
  std::string error;
  const int status = varuna::analyze::RunAnalysis(options, &findings, &error);
  if (status == 2) {
    std::fprintf(stderr, "varuna-analyze: %s\n", error.c_str());
    return 2;
  }
  for (const varuna::analyze::Finding& finding : findings) {
    std::printf("%s\n", varuna::analyze::FormatFinding(finding).c_str());
  }
  if (!findings.empty()) {
    std::printf("varuna-analyze: %zu finding(s)\n", findings.size());
    return 1;
  }
  std::printf("varuna-analyze: clean\n");
  return 0;
}
