#!/usr/bin/env python3
"""varuna-lint: repo-specific static checks no generic tool knows about.

Rules (each can be suppressed on a line with `// varuna-lint: allow(<rule>)`):

  determinism     The DES contract (src/sim/engine.h) requires every stochastic
                  or temporal input to flow through the seeded varuna::Rng and
                  the simulated clock. Wall-clock reads and ambient RNGs
                  silently break bit-identical replay: rand(), srand(),
                  std::random_device, system_clock/steady_clock/
                  high_resolution_clock, gettimeofday(), time(), clock(),
                  <random> and <chrono> includes. Applies to src/, tests/ and
                  bench/ (the bench timing harness is the reviewed exception,
                  TIMING_ALLOW_FILES).

  check-macro     Use VARUNA_CHECK (src/common/check.h) instead of assert():
                  contract checks must stay on in release builds, and
                  CHECK failures print the violated expression with context.
                  static_assert is fine. Applies to src/, tests/ and bench/.

  include-guard   Header guards must be the path uppercased:
                  src/sim/engine.h -> SRC_SIM_ENGINE_H_.

  unit-suffix     Public headers in src/net and src/cluster must not take raw
                  `double` time/byte quantities without a unit suffix: names
                  that read as times end in `_s`, names that read as byte
                  counts end in `_bytes` (a bare `bytes` is already a unit).
                  Applies to parameters and struct/class members.

  threading       All parallelism inside src/ flows through the deterministic
                  fan-out/join pool in src/common/thread_pool.{h,cc}; ad-hoc
                  threads have no determinism contract and no TSan coverage.
                  Bans std::thread / std::jthread / std::async and the
                  <thread> / <future> includes everywhere in src/ except the
                  pool itself (std::mutex / std::condition_variable stay
                  allowed — locking is fine, spawning is not). Using the pool
                  is itself gated: deterministic fan-out requires
                  pure-function-of-index work items, so ThreadPool users are
                  an explicit reviewed allowlist (POOL_USER_FILES) — today the
                  config search, the elastic trainer, and the pooled
                  micro-batch trainers in src/train.

  hot-path        The per-event simulation hot path (src/sim/, the pipeline
                  executor) and the morph-decision sweep (src/morph/, the
                  schedule cache) must stay allocation-free in steady state:
                  node-based containers (std::map / std::unordered_map /
                  std::unordered_set / std::set) and std::function (heap
                  fallback above ~16 bytes of capture) are banned there — use
                  flat vectors, the SimEngine slot pool, open-addressing memo
                  tables, and SmallCallback (src/sim/callback.h). Deliberate
                  exceptions go on the reviewed HOT_PATH_ALLOW_FILES list
                  (today: the one-time calibration's profiled-point maps).

  tensor-by-value Passing varuna::Tensor by value copies the whole element
                  buffer — one stray signature silently reintroduces the
                  allocation the arena hot path exists to avoid. Function
                  parameters in src/ must take `const Tensor&` (inputs) or
                  `Tensor*` (explicit outputs, the *Into style).

Semantic hazards (stream forks, include layering, fingerprint coverage) are
the sibling C++ analyzer's job: tools/analyze (varuna_analyze). This file
stays line-oriented; its stripper is regression-tested by
tests/varuna_lint_test.py (ctest label `lint`).

Usage:
  tools/varuna_lint.py [paths...]     # default: src/ tests/ bench/
Exit status: 0 clean, 1 violations, 2 usage error.
"""

import os
import re
import sys

ALLOW_RE = re.compile(r"//\s*varuna-lint:\s*allow\(([a-z-]+)\)")

# --- determinism ------------------------------------------------------------

DETERMINISM_PATTERNS = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\b(system_clock|steady_clock|high_resolution_clock)\b"),
     "wall clock (std::chrono::*_clock)"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(NULL|nullptr|0|&)"), "time()"),
    (re.compile(r"(?<![\w:.])clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"#\s*include\s*<random>"), "#include <random>"),
    (re.compile(r"#\s*include\s*<chrono>"), "#include <chrono>"),
]

# The determinism rule also covers tests/ and bench/ (a wall-clock read in a
# test can hide flaky behaviour exactly like it breaks replay in src/). The
# bench timing harness is the one reviewed exception: measuring wall time is
# its entire job, and nothing downstream of it feeds a simulation.
TIMING_ALLOW_FILES = ("bench/bench_util.h",)

# --- check-macro ------------------------------------------------------------

ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")

# --- threading --------------------------------------------------------------

THREADING_PATTERNS = [
    # `std::this_thread` is fine (the `thread\b` must follow `std::` directly).
    (re.compile(r"\bstd\s*::\s*(jthread|thread)\b"), "std::thread/std::jthread"),
    (re.compile(r"\bstd\s*::\s*async\b"), "std::async"),
    (re.compile(r"#\s*include\s*<thread>"), "#include <thread>"),
    (re.compile(r"#\s*include\s*<future>"), "#include <future>"),
]
# The one place allowed to create threads.
THREAD_POOL_FILES = ("src/common/thread_pool.h", "src/common/thread_pool.cc")

# Files allowed to *use* the pool. Deterministic fan-out requires
# pure-function-of-index work items with a fixed merge order, so every new
# user is a deliberate, reviewed addition to this list.
POOL_USER_FILES = THREAD_POOL_FILES + (
    "src/morph/config_search.h",        # parallel candidate evaluation
    "src/manager/elastic_trainer.h",    # morph planning off the step loop
    "src/manager/elastic_trainer.cc",
    "src/sim/sharded_engine.h",         # per-shard window drains
    "src/sim/sharded_engine.cc",
    "src/train/trainers.h",             # pooled micro-batch execution
    "src/train/trainers.cc",
    "src/varuna/varuna.h",              # umbrella header re-export
)
# The include path is a string literal, which strip_comments_and_strings
# empties — so the include pattern is matched against the string-preserving
# line instead (see lint_file).
POOL_INCLUDE_RE = re.compile(r'#\s*include\s*"src/common/thread_pool\.h"')
POOL_USE_RE = re.compile(r"\bThreadPool\b")

# --- hot-path ---------------------------------------------------------------

HOT_PATH_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*function\b"), "std::function"),
    (re.compile(r"\bstd\s*::\s*(unordered_map|unordered_set|map|set)\b"),
     "node-based std container"),
    (re.compile(r"#\s*include\s*<(map|set|unordered_map|unordered_set|functional)>"),
     "node-based/functional include"),
]
# The simulation hot path: every file under src/sim/, plus the executor, plus
# the morph-decision sweep (src/morph/ and the schedule cache it leans on) —
# the config search runs at every preemption/arrival event and its memo
# tables must stay flat (sorted vectors / open addressing, no node chasing).
# The checkpoint store joined the list when its record table went flat: its
# per-shard flush events and the latest-usable chain scans fire on the DES
# hot path during every storm.
HOT_PATH_PREFIXES = ("src/sim/", "src/morph/")
HOT_PATH_FILES = (
    "src/pipeline/executor.h",
    "src/pipeline/executor.cc",
    "src/pipeline/schedule_cache.h",
    "src/pipeline/schedule_cache.cc",
    "src/manager/checkpoint.h",
    "src/manager/checkpoint.cc",
)
# Explicit, reviewed exceptions. Calibration is the one-time profiling step
# (§4.3): its std::map of profiled (m -> seconds) points is built once at job
# start and only read via interpolation afterwards — cold path by contract.
HOT_PATH_ALLOW_FILES = (
    "src/morph/calibration.h",
    "src/morph/calibration.cc",
)

# --- tensor-by-value --------------------------------------------------------

# `Tensor <name>` followed by `,` or `)` is a by-value parameter; references,
# pointers, return types (`Tensor Foo(`), members (`Tensor x_;`) and
# template arguments (`vector<Tensor>`) all fail the match.
TENSOR_BY_VALUE_RE = re.compile(r"\bTensor\s+[A-Za-z_]\w*\s*[,)]")

# --- unit-suffix ------------------------------------------------------------

# `double <name>` in a declaration context (parameter list or member).
DOUBLE_DECL_RE = re.compile(r"\bdouble\s+([A-Za-z_]\w*)\s*[,)=;{]")
TIME_WORDS = re.compile(
    r"(^|_)(time|latency|delay|timeout|interval|duration|deadline|period|stall|horizon)(_|$)")
BYTE_WORDS = re.compile(r"(^|_)(bytes?|payload)(_|$)")
# Accepted unit suffixes for time-like and byte-like quantities (private
# members carry a trailing underscore after the unit).
TIME_OK = re.compile(r"(_s|_per_s)_?$")
BYTE_OK = re.compile(r"(_bytes|_bytes_per_s|_bps)_?$")
# Dimensionless quantities that merely mention a time/byte word
# (stall_probability, preemption_hazard_fraction, ...).
DIMENSIONLESS = re.compile(r"(probability|prob|ratio|fraction|factor|sigma|count|slots?)$")


def fresh_strip_state():
    """Cross-line lexing state for strip_comments_and_strings: block comments,
    raw strings, backslash-continued ordinary literals and // comments."""
    return {"block": False, "raw": None, "quote": None, "line_comment": False}


def _opens_raw_string(line, i):
    """True when the quote at line[i] opens a raw string literal (R"...",
    including the u8R/uR/UR/LR encoding prefixes)."""
    for prefix in ("u8R", "uR", "UR", "LR", "R"):
        start = i - len(prefix)
        if start < 0 or line[start:i] != prefix:
            continue
        before = line[start - 1] if start > 0 else ""
        if not (before.isalnum() or before == "_"):
            return True
    return False


def strip_comments_and_strings(line, state=None):
    """Removes comments and the contents of string/char literals, keeping the
    line length stable enough for human-readable reporting.

    Handles raw string literals (R"delim(...)delim", any encoding prefix) and
    escaped quotes/backslashes correctly; pass the same `state` dict (from
    fresh_strip_state()) across consecutive lines of a file and multi-line
    constructs — block comments, raw strings, literals and // comments
    continued with a trailing backslash — are carried over instead of leaking
    their contents into the "code" the rules match against."""
    if state is None:
        state = fresh_strip_state()
    out = []
    i = 0
    n = len(line)
    if state["line_comment"]:
        state["line_comment"] = line.endswith("\\")
        return ""
    while i < n:
        if state["block"]:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out)
            state["block"] = False
            i = end + 2
            continue
        if state["raw"] is not None:
            close = ")" + state["raw"] + '"'
            end = line.find(close, i)
            if end < 0:
                return "".join(out)
            out.append('"')
            state["raw"] = None
            i = end + len(close)
            continue
        if state["quote"] is not None:
            quote = state["quote"]
            state["quote"] = None
            closed = False
            while i < n:
                if line[i] == "\\":
                    if i + 1 >= n:  # escaped newline: literal continues
                        state["quote"] = quote
                        return "".join(out)
                    i += 2
                    continue
                if line[i] == quote:
                    closed = True
                    out.append(quote)
                    i += 1
                    break
                i += 1
            if not closed and i >= n:
                return "".join(out)
            continue
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            state["line_comment"] = line.endswith("\\")
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            state["block"] = True
            i += 2
            continue
        if c == '"' and _opens_raw_string(line, i):
            paren = line.find("(", i + 1)
            if paren >= 0:
                out.append('"')
                state["raw"] = line[i + 1:paren]
                i = paren + 1
                continue
            # Malformed raw string; fall through and treat as ordinary.
        if c in "\"'":
            out.append(c)
            state["quote"] = c
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Linter:
    def __init__(self, repo_root):
        self.repo_root = repo_root
        self.violations = []

    def report(self, path, line_number, rule, message):
        rel = os.path.relpath(path, self.repo_root)
        self.violations.append(f"{rel}:{line_number}: [{rule}] {message}")

    def lint_file(self, path):
        rel = os.path.relpath(path, self.repo_root).replace(os.sep, "/")
        try:
            with open(path, encoding="utf-8") as f:
                raw_lines = f.read().splitlines()
        except (OSError, UnicodeDecodeError) as error:
            self.report(path, 0, "io", f"unreadable: {error}")
            return

        in_src = rel.startswith("src/")
        # The determinism and check-macro contracts extend to the test and
        # bench trees: a wall-clock read in a test harness hides flakiness the
        # same way it breaks replay in src/. The bench timing harness is the
        # one reviewed exception (TIMING_ALLOW_FILES).
        in_checked = rel.startswith(("src/", "tests/", "bench/"))
        determinism_scoped = in_checked and rel not in TIMING_ALLOW_FILES
        unit_scoped = rel.startswith(("src/net/", "src/cluster/")) and rel.endswith(".h")

        state = fresh_strip_state()
        for number, raw in enumerate(raw_lines, start=1):
            allowed = set(ALLOW_RE.findall(raw))
            # A line opened inside a multi-line construct (block comment, raw
            # string, continued literal) is not code for the raw-line checks.
            carried_over = (state["block"] or state["raw"] is not None
                            or state["quote"] is not None or state["line_comment"])
            line = "" if carried_over else raw
            code = strip_comments_and_strings(raw, state)

            if determinism_scoped and "determinism" not in allowed:
                for pattern, what in DETERMINISM_PATTERNS:
                    if pattern.search(code):
                        self.report(path, number, "determinism",
                                    f"{what} breaks the SimEngine determinism contract; "
                                    "route randomness through varuna::Rng and time through "
                                    "SimEngine::now()")
            if in_checked and "check-macro" not in allowed:
                if ASSERT_RE.search(code) and "static_assert" not in code:
                    self.report(path, number, "check-macro",
                                "use VARUNA_CHECK (src/common/check.h) instead of assert()")
            if in_src and rel not in THREAD_POOL_FILES and "threading" not in allowed:
                for pattern, what in THREADING_PATTERNS:
                    if pattern.search(code):
                        self.report(path, number, "threading",
                                    f"{what}: spawn work through the deterministic pool "
                                    "in src/common/thread_pool.h, not ad-hoc threads")
            if in_src and rel not in POOL_USER_FILES and "threading" not in allowed:
                if POOL_USE_RE.search(code) or POOL_INCLUDE_RE.search(line.split("//", 1)[0]):
                    self.report(path, number, "threading",
                                "ThreadPool use outside the reviewed allowlist; pooled "
                                "work items must be pure functions of their index — add "
                                "the file to POOL_USER_FILES deliberately")
            hot_path = (rel.startswith(HOT_PATH_PREFIXES) or rel in HOT_PATH_FILES) \
                and rel not in HOT_PATH_ALLOW_FILES
            if hot_path and "hot-path" not in allowed:
                for pattern, what in HOT_PATH_PATTERNS:
                    if pattern.search(code):
                        self.report(path, number, "hot-path",
                                    f"{what} in a simulation hot-path file; use flat "
                                    "vectors / the SimEngine slot pool / SmallCallback "
                                    "(src/sim/callback.h), or add the file to "
                                    "HOT_PATH_ALLOW_FILES deliberately")
            if in_src and "tensor-by-value" not in allowed:
                if TENSOR_BY_VALUE_RE.search(code):
                    self.report(path, number, "tensor-by-value",
                                "by-value Tensor parameter copies the element buffer; "
                                "take const Tensor& (input) or Tensor* (output)")
            if unit_scoped and "unit-suffix" not in allowed:
                for match in DOUBLE_DECL_RE.finditer(code):
                    name = match.group(1)
                    if DIMENSIONLESS.search(name):
                        continue
                    if TIME_WORDS.search(name) and not TIME_OK.search(name):
                        self.report(path, number, "unit-suffix",
                                    f"double '{name}' reads as a time; suffix it with _s")
                    elif (BYTE_WORDS.search(name) and name != "bytes"
                          and not BYTE_OK.search(name)):
                        self.report(path, number, "unit-suffix",
                                    f"double '{name}' reads as a byte count; "
                                    "suffix it with _bytes")

        if rel.endswith(".h"):
            self.check_include_guard(path, rel, raw_lines)

    def check_include_guard(self, path, rel, raw_lines):
        expected = rel.upper().replace("/", "_").replace(".", "_").replace("-", "_") + "_"
        ifndef = define = None
        ifndef_line = 0
        for number, line in enumerate(raw_lines, start=1):
            if "varuna-lint: allow(include-guard)" in line:
                return
            m = re.match(r"\s*#\s*ifndef\s+(\w+)", line)
            if m and ifndef is None:
                ifndef, ifndef_line = m.group(1), number
                continue
            m = re.match(r"\s*#\s*define\s+(\w+)", line)
            if m and ifndef is not None and define is None:
                define = m.group(1)
                break
        if ifndef is None or define is None:
            self.report(path, 1, "include-guard", f"missing include guard {expected}")
        elif ifndef != expected or define != expected:
            self.report(path, ifndef_line, "include-guard",
                        f"guard is {ifndef}, want {expected}")


def iter_files(paths):
    extensions = (".h", ".cc", ".cpp")
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            # Never descend into build trees or VCS metadata; the analyzer
            # fixtures are deliberately-defective *data* for varuna_analyze,
            # not code.
            dirnames[:] = [d for d in dirnames
                           if not d.startswith("build") and d != ".git"
                           and d != "analyze_fixtures"]
            for name in sorted(filenames):
                if name.endswith(extensions):
                    yield os.path.join(dirpath, name)


def main(argv):
    repo_root = os.path.dirname(os.path.abspath(os.path.dirname(__file__)))
    paths = argv[1:] or [os.path.join(repo_root, d) for d in ("src", "tests", "bench")]
    for path in paths:
        if not os.path.exists(path):
            print(f"varuna-lint: no such path: {path}", file=sys.stderr)
            return 2
    linter = Linter(repo_root)
    count = 0
    for file_path in iter_files(paths):
        count += 1
        linter.lint_file(file_path)
    if linter.violations:
        for violation in linter.violations:
            print(violation)
        print(f"varuna-lint: {len(linter.violations)} violation(s) in {count} file(s)")
        return 1
    print(f"varuna-lint: {count} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
